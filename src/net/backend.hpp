// Backend fusion service: the city-side endpoint readers report to.
//
// Readers upload sightings (CFO + AoA); the backend associates sightings
// of the same transponder across readers — CFO is the association key, the
// paper's stand-in for an id when decoding hasn't happened — and fuses
// pairs of AoA constraints from different readers into position fixes
// (§6: "by solving these two equations, one can find x and y").
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/aoa.hpp"
#include "core/localizer.hpp"
#include "net/message.hpp"

namespace caraoke::net {

/// A fused cross-reader position estimate.
struct FusedFix {
  double cfoHz = 0.0;
  double timestamp = 0.0;  ///< Mean of the two sighting timestamps.
  phy::Vec3 position;
  std::uint32_t readerA = 0;
  std::uint32_t readerB = 0;
};

/// Association/fusion tuning.
struct BackendConfig {
  /// Sightings within this CFO distance are the same transponder. The
  /// paper's population spreads over 1.2 MHz, so a few kHz is selective.
  double cfoToleranceHz = 4e3;
  /// Maximum timestamp gap between the two sightings of a pair.
  double timeWindowSec = 0.5;
  core::RoadPlane road{};
  /// Optional prior: known lane centers / parking rows (y values). When
  /// the two cones intersect the road in more than one point, the
  /// candidate nearest one of these rows wins (city GIS knowledge the
  /// paper's footnote 10 appeals to).
  std::vector<double> preferredRowsY{};
};

/// Collects reports and produces fused fixes.
class Backend {
 public:
  explicit Backend(BackendConfig config = {}) : config_(config) {}

  /// Register a reader's antenna calibration (world frame). Required
  /// before its sightings can be fused.
  void registerReader(std::uint32_t readerId, core::ArrayGeometry geometry);

  /// Ingest a framed message (as received from the modem link).
  caraoke::Result<bool> ingestFrame(const std::vector<std::uint8_t>& frame);

  /// Ingest an already-decoded message.
  void ingest(const Message& message);

  /// Associate + fuse everything currently buffered; consumed sightings
  /// are removed. Unpaired sightings stay buffered until they expire out
  /// of the time window.
  std::vector<FusedFix> fuse(double now);

  /// Count time series per reader (traffic monitoring feed).
  const std::vector<CountReport>& counts() const { return counts_; }

  /// Decoded identities seen so far.
  const std::vector<DecodeReport>& decodes() const { return decodes_; }

  std::size_t pendingSightings() const { return sightings_.size(); }

 private:
  BackendConfig config_;
  std::map<std::uint32_t, core::ArrayGeometry> readers_;
  std::vector<SightingReport> sightings_;
  std::vector<CountReport> counts_;
  std::vector<DecodeReport> decodes_;
};

}  // namespace caraoke::net
