// Backend fusion service: the city-side endpoint readers report to.
//
// Readers upload sightings (CFO + AoA); the backend associates sightings
// of the same transponder across readers — CFO is the association key, the
// paper's stand-in for an id when decoding hasn't happened — and fuses
// pairs of AoA constraints from different readers into position fixes
// (§6: "by solving these two equations, one can find x and y").
//
// Two-reader speed pairing (§7): every ingested sighting also feeds a
// per-(reader, CFO cluster) angle track; pairSpeeds() finds the
// abeam-crossing time at each of two poles (cos(alpha) zero crossing)
// and estimates v = dx/dt from the pole spacing. Each SpeedFix carries
// the traceId of the sighting nearest its abeam crossing, so the backend
// speed-pairing span joins the originating reader's trace — the far end
// of the v3 envelope propagation (see net/framing).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/thread_annotations.hpp"
#include "core/aoa.hpp"
#include "core/localizer.hpp"
#include "core/speed.hpp"
#include "net/framing.hpp"
#include "net/message.hpp"
#include "net/snapshot.hpp"
#include "net/wal.hpp"
#include "obs/expo.hpp"
#include "obs/flight.hpp"

namespace caraoke::net {

/// A fused cross-reader position estimate.
struct FusedFix {
  double cfoHz = 0.0;
  double timestamp = 0.0;  ///< Mean of the two sighting timestamps.
  phy::Vec3 position;
  std::uint32_t readerA = 0;
  std::uint32_t readerB = 0;
};

/// A two-reader speed estimate (§7: abeam-crossing times at two poles a
/// known along-road distance apart).
struct SpeedFix {
  double cfoHz = 0.0;      ///< Mean CFO of the two matched clusters.
  double speedMps = 0.0;   ///< Signed along-road speed.
  double abeamTimeA = 0.0; ///< Crossing time at readerA's pole.
  double abeamTimeB = 0.0;
  std::uint32_t readerA = 0;
  std::uint32_t readerB = 0;
  /// Trace of the readerA sighting nearest its abeam crossing (0 when
  /// the contributing sightings arrived without trace context).
  std::uint64_t traceId = 0;
};

/// Crash durability. Off by default (empty dir): the backend keeps its
/// state in RAM only, exactly as before. With a directory set, every
/// accepted uplink batch is appended to `<dir>/backend.wal` *before* any
/// state mutation, snapshots are cut into the same directory, and a
/// restarted backend must call restore() before ingesting (it reports
/// `recovering` on /healthz until then).
struct DurabilityConfig {
  /// Durability directory (WAL + snapshots). Empty = durability off.
  std::string dir;
  /// When appends reach the platter (see net/wal.hpp for the tradeoffs).
  WalFsyncPolicy fsyncPolicy = WalFsyncPolicy::kEveryAppend;
  /// Append count between fsyncs under WalFsyncPolicy::kEveryN.
  std::size_t fsyncEveryN = 8;
  /// Cut a snapshot every this-many WAL appends (0 = only on explicit
  /// snapshotNow() calls). Bounds replay length after a crash.
  std::size_t snapshotEveryAppends = 0;
  /// Chaos injection (crash suite only): the N-th WAL append (1-based)
  /// tears mid-record and the backend plays dead from then on. 0 = off.
  std::uint64_t tearWalAtAppend = 0;
  std::size_t tearWalKeepBytes = 0;  ///< 0 = half the record.
  /// Chaos injection: cutting snapshot number N dies after writing the
  /// tmp file, before the rename — the classic mid-snapshot crash.
  std::uint64_t tearSnapshotAtSeq = 0;
};

/// What Backend::restore recovered (for logs, tests, and ops).
struct RestoreStats {
  std::uint64_t snapshotSeq = 0;     ///< 0 = no snapshot, replayed from start.
  std::size_t snapshotsRejected = 0; ///< Corrupt candidates skipped over.
  std::size_t replayedRecords = 0;   ///< WAL records applied past the snapshot.
  std::size_t corruptRecords = 0;    ///< Torn/corrupt records salvaged past.
  std::uint64_t salvagedBytes = 0;   ///< Bytes discarded after the damage.
};

/// Association/fusion tuning.
struct BackendConfig {
  /// Sightings within this CFO distance are the same transponder. The
  /// paper's population spreads over 1.2 MHz, so a few kHz is selective.
  double cfoToleranceHz = 4e3;
  /// Maximum timestamp gap between the two sightings of a pair.
  double timeWindowSec = 0.5;
  core::RoadPlane road{};
  /// Optional prior: known lane centers / parking rows (y values). When
  /// the two cones intersect the road in more than one point, the
  /// candidate nearest one of these rows wins (city GIS knowledge the
  /// paper's footnote 10 appeals to).
  std::vector<double> preferredRowsY{};
  /// Speed-pairing sample retention: angle samples older than this are
  /// expired by pairSpeeds(). Long enough to ride out an uplink outage
  /// (retransmitted sightings arrive late but keep their timestamps).
  double speedWindowSec = 300.0;
  /// Minimum angle samples per (reader, CFO cluster) before an abeam
  /// crossing is trusted.
  std::size_t minAbeamSamples = 3;
  /// Live exposition: when >= 0, serve GET /metrics, /metrics.json,
  /// /healthz, /flight and /trace/<id> on 127.0.0.1:<expoPort>
  /// (0 = ephemeral). Negative (default) keeps the backend silent.
  int expoPort = -1;
  /// Flight-ring depth (backend.ingest / backend.speed_fix events).
  std::size_t flightCapacity = 512;
  /// Crash durability (WAL + snapshots). Off unless dir is set.
  DurabilityConfig durability{};
};

/// Outcome of ingesting one uplink batch frame.
struct BatchIngestStats {
  std::uint32_t readerId = 0;
  std::uint32_t seq = 0;
  /// The batch's seq was already seen: nothing ingested (the ack is
  /// still regenerated — the reader clearly missed the first one).
  bool deduplicated = false;
  std::size_t accepted = 0;         ///< Messages ingested.
  std::size_t droppedMessages = 0;  ///< Undecodable inner messages skipped.
  bool hasAck = false;              ///< v2 frames always get an ack.
  std::vector<std::uint8_t> ack;    ///< Send this back to the reader.
};

/// Collects reports and produces fused fixes.
///
/// Thread-safe for the ingestion surface: registerReader, ingestFrame,
/// ingestBatch, ingest, fuse, and the scalar accessors (gapCount,
/// highestSeq, pendingSightings, countsSize/decodesSize) all serialize
/// on an internal mutex, so one backend can ingest many readers' uplink
/// streams from concurrent threads. The by-reference accessors
/// (counts(), decodes(), sightings()) hand out views into live storage
/// and therefore require the caller to quiesce ingestion first — they
/// are audit/reporting APIs, not hot-path ones.
class Backend {
 public:
  explicit Backend(BackendConfig config = {});

  /// Register a reader's antenna calibration (world frame). Required
  /// before its sightings can be fused.
  void registerReader(std::uint32_t readerId, core::ArrayGeometry geometry);

  /// Ingest a framed message (as received from the modem link).
  caraoke::Result<bool> ingestFrame(const std::vector<std::uint8_t>& frame);

  /// Ingest one uplink batch frame from the lossy link. Hardened: inner
  /// messages that fail to decode are skipped (salvage), v2 envelopes are
  /// deduplicated by (readerId, seq) so retransmissions never double-count,
  /// out-of-order arrival is tolerated, and sequence gaps are accounted.
  /// Fails only when the whole frame is unusable (bad magic, CRC
  /// mismatch) — no ack is generated then, which is what triggers the
  /// reader's retransmission.
  caraoke::Result<BatchIngestStats> ingestBatch(
      const std::vector<std::uint8_t>& frame);

  /// Ingest an already-decoded message.
  void ingest(const Message& message);

  /// Recover state from the configured durability directory: load the
  /// newest valid snapshot, replay the WAL tail past its offset
  /// (salvaging past a torn/corrupt trailing record), truncate the torn
  /// tail, and reopen the log for appending. Required before ingesting
  /// when durability is on — until it completes, /healthz reports
  /// `recovering` (503) and ingestBatch refuses frames (no ack, so
  /// readers keep retransmitting). Idempotent state-wise on a fresh
  /// directory (empty backend). Fails only when the directory cannot be
  /// used (unwritable WAL).
  caraoke::Result<RestoreStats> restore();

  /// restore() into `dir` (overrides config.durability.dir; the common
  /// call when the restarted process learns its directory late).
  caraoke::Result<RestoreStats> restore(const std::string& dir);

  /// Cut a snapshot now: serialize full state + current WAL offset,
  /// publish atomically. False when durability is off, the WAL is dead,
  /// or the write fails. Called automatically every
  /// durability.snapshotEveryAppends appends when that is non-zero.
  bool snapshotNow();

  /// Deterministic serialization of the complete mutable state (the
  /// snapshot codec with the WAL offset zeroed). Two backends with equal
  /// state produce equal bytes — the crash suite's byte-identity oracle.
  std::vector<std::uint8_t> stateBytes() const;

  /// True while durability is configured but restore() has not yet
  /// completed (mirrored by /healthz as a 503 `recovering` state).
  bool recovering() const {
    return recovering_.load(std::memory_order_acquire);
  }

  /// True when the durability layer is armed and the WAL is writable.
  bool durable() const;

  /// Associate + fuse everything currently buffered; consumed sightings
  /// are removed. Unpaired sightings stay buffered until they expire out
  /// of the time window.
  std::vector<FusedFix> fuse(double now);

  /// Pair abeam crossings across readers into speed estimates (§7).
  /// Consumes the matched angle samples and expires ones older than
  /// config.speedWindowSec. Each fix emits a `net.backend.speed_pair`
  /// span and a `backend.speed_fix` event under the fix's trace context.
  std::vector<SpeedFix> pairSpeeds(double now);

  /// Angle samples currently buffered for speed pairing.
  std::size_t pendingSpeedSamples() const;

  /// Black-box ring of backend events (always recording; served at
  /// /flight and /trace/<id> when exposition is on).
  const obs::FlightRecorder& flight() const { return flight_; }
  obs::FlightRecorder& flight() { return flight_; }

  /// Bound exposition port, or 0 when exposition is off / bind failed.
  std::uint16_t expoPort() const {
    return expo_ != nullptr ? expo_->port() : 0;
  }

  /// Count time series per reader (traffic monitoring feed). Requires
  /// quiesced ingestion (see class comment).
  const std::vector<CountReport>& counts() const CARAOKE_NO_TSA {
    return counts_;  // lockcheck: allow(guard): audit API; caller quiesces ingestion (class contract)
  }

  /// Decoded identities seen so far. Requires quiesced ingestion.
  const std::vector<DecodeReport>& decodes() const CARAOKE_NO_TSA {
    return decodes_;  // lockcheck: allow(guard): audit API; caller quiesces ingestion (class contract)
  }

  /// Sightings currently buffered (not yet fused or expired). Requires
  /// quiesced ingestion.
  const std::vector<SightingReport>& sightings() const CARAOKE_NO_TSA {
    return sightings_;  // lockcheck: allow(guard): audit API; caller quiesces ingestion (class contract)
  }

  std::size_t pendingSightings() const;
  /// Count/decode report totals, safe under concurrent ingestion.
  std::size_t countsSize() const;
  std::size_t decodesSize() const;

  /// Sequence numbers from this reader still missing below its highest
  /// seen seq (a drop not yet repaired by retransmission). Zero once the
  /// link heals and the outbox drains.
  std::size_t gapCount(std::uint32_t readerId) const;

  /// Highest batch seq seen from a reader (0 = none yet).
  std::uint32_t highestSeq(std::uint32_t readerId) const;

 private:
  /// Per-reader uplink sequence accounting.
  struct ReaderSeqState {
    std::set<std::uint32_t> seen;
    std::uint32_t maxSeq = 0;
  };

  /// One speed-pairing input: a sighting reduced to its along-road
  /// direction cosine plus the trace it arrived under.
  struct SpeedSample {
    std::uint32_t readerId = 0;
    double timestamp = 0.0;
    double cfoHz = 0.0;
    double cosAlpha = 0.0;
    std::uint64_t traceId = 0;
  };

  /// ingest() body; assumes mutex_ is held.
  void ingestLocked(const Message& message) CARAOKE_REQUIRES(mutex_);
  /// Dedup/gap/seq accounting + message ingestion for one decoded batch;
  /// assumes mutex_ is held. Shared by the live ingest path (after the
  /// WAL append) and WAL replay (which must mutate state identically).
  /// False when the batch seq was already seen (nothing ingested).
  bool applyBatchLocked(const DecodedBatch& batch, BatchIngestStats& stats)
      CARAOKE_REQUIRES(mutex_);
  /// Flatten current state into the snapshot form; assumes mutex_ held.
  BackendSnapshot buildSnapshotLocked() const CARAOKE_REQUIRES(mutex_);
  /// Replace current state with a decoded snapshot; assumes mutex_ held.
  void applySnapshotLocked(const BackendSnapshot& snapshot)
      CARAOKE_REQUIRES(mutex_);
  /// snapshotNow() body; assumes mutex_ held.
  bool snapshotNowLocked() CARAOKE_REQUIRES(mutex_);
  std::string walPath() const;
  /// Record into the flight ring (always) and the process event sink
  /// (when attached). Called under mutex_ — the source of the
  /// Backend -> FlightRecorder/EventSink lock-order edges (DESIGN.md §10).
  void recordEvent(const char* type, std::vector<obs::Field> fields)
      CARAOKE_REQUIRES(mutex_);
  void startExposition();

  /// Guards all mutable state below (flight_ has its own lock).
  /// Lock order (DESIGN.md §10): while mutex_ is held the backend may
  /// acquire FlightRecorder/EventSink/TraceSink/Registry locks (events,
  /// spans, metric resolution); it never acquires an Outbox lock.
  mutable std::mutex mutex_;
  BackendConfig config_;
  std::map<std::uint32_t, core::ArrayGeometry> readers_
      CARAOKE_GUARDED_BY(mutex_);
  std::map<std::uint32_t, ReaderSeqState> seqState_ CARAOKE_GUARDED_BY(mutex_);
  std::vector<SightingReport> sightings_ CARAOKE_GUARDED_BY(mutex_);
  std::vector<CountReport> counts_ CARAOKE_GUARDED_BY(mutex_);
  std::vector<DecodeReport> decodes_ CARAOKE_GUARDED_BY(mutex_);
  std::vector<SpeedSample> speedSamples_ CARAOKE_GUARDED_BY(mutex_);
  /// Durability: the open WAL (null when durability is off or restore()
  /// has not run yet). Accessed only under mutex_, which is what keeps
  /// WAL order identical to state-mutation order.
  std::unique_ptr<WalWriter> wal_ CARAOKE_GUARDED_BY(mutex_);
  /// Next snapshot file number (always past every file already on disk).
  std::uint64_t nextSnapshotSeq_ CARAOKE_GUARDED_BY(mutex_) = 1;
  std::uint64_t appendsSinceSnapshot_ CARAOKE_GUARDED_BY(mutex_) = 0;
  /// True from construction (durability configured) until restore()
  /// completes. Read lock-free by the expo /healthz thread.
  std::atomic<bool> recovering_ CARAOKE_LOCKFREE{false};
  /// Backend black box; written on every recordEvent, snapshotted by the
  /// expo thread.
  obs::FlightRecorder flight_;
  /// Declared last so its thread dies before the state it serves.
  std::unique_ptr<obs::ExpoServer> expo_;
};

}  // namespace caraoke::net
