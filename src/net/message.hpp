// Reader -> backend wire protocol.
//
// A reader uploads the *results* of processing a query — channels, CFOs,
// counts, decoded ids — not raw samples (paper footnote 15: "a few kbits
// per query"), which is what makes modem duty-cycling viable. Messages are
// framed with a type tag and length and serialized little-endian.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "obs/trace.hpp"
#include "phy/packet.hpp"

namespace caraoke::net {

/// Serialization buffer writer (little-endian, append-only).
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Serialization reader; all reads are bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::vector<std::uint8_t> bytes)
      : buffer_(std::move(bytes)) {}
  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool f64(double& v);
  bool atEnd() const { return cursor_ == buffer_.size(); }

 private:
  bool take(std::size_t n, const std::uint8_t** out);
  std::vector<std::uint8_t> buffer_;
  std::size_t cursor_ = 0;
};

// Trace provenance (traceId/spanId) on the reports below is carried by
// the *batch envelope* (v3 entry prefix in net/framing), not by the
// per-message payload encoding — encodeMessage/decodeMessage ignore the
// two fields, which is what keeps v1/v2 peers decodable. traceId 0 means
// "no trace" (pre-v3 sender or tracing disabled).

/// Periodic count sample (traffic monitoring).
struct CountReport {
  std::uint32_t readerId = 0;
  double timestamp = 0.0;   ///< Reader-local time [s].
  std::uint32_t count = 0;  ///< Estimated transponders in range.
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
};

/// One transponder sighting: CFO plus the chosen-pair AoA.
struct SightingReport {
  std::uint32_t readerId = 0;
  double timestamp = 0.0;
  double cfoHz = 0.0;
  std::uint32_t pairIndex = 0;
  double angleRad = 0.0;
  double peakMagnitude = 0.0;
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
};

/// A decoded transponder identity.
struct DecodeReport {
  std::uint32_t readerId = 0;
  double timestamp = 0.0;
  double cfoHz = 0.0;
  phy::TransponderId id{};
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
};

using Message = std::variant<CountReport, SightingReport, DecodeReport>;

/// Envelope-level trace identity of any Message alternative (all three
/// carry the same two fields).
obs::TraceContext messageTrace(const Message& message);
/// Stamp the envelope-recovered trace identity onto a decoded Message.
void setMessageTrace(Message& message, const obs::TraceContext& trace);

/// Frame a message: [type:u8][payload]. The payload layout is fixed per
/// type, so no length prefix is needed inside a frame.
std::vector<std::uint8_t> encodeMessage(const Message& message);

/// Parse one framed message. Fails on truncation or an unknown type tag.
caraoke::Result<Message> decodeMessage(const std::vector<std::uint8_t>& bytes);

}  // namespace caraoke::net
