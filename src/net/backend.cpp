#include "net/backend.hpp"

#include <algorithm>
#include <cmath>

#include "net/outbox.hpp"
#include "obs/metrics.hpp"

namespace caraoke::net {

namespace {

struct BackendMetrics {
  obs::Counter& frames =
      obs::globalRegistry().counter("net.backend.frames_ingested");
  obs::Counter& frameErrors =
      obs::globalRegistry().counter("net.backend.frame_errors");
  obs::Counter& counts =
      obs::globalRegistry().counter("net.backend.count_reports");
  obs::Counter& sightings =
      obs::globalRegistry().counter("net.backend.sighting_reports");
  obs::Counter& decodes =
      obs::globalRegistry().counter("net.backend.decode_reports");
  obs::Counter& fixes = obs::globalRegistry().counter("net.backend.fixes_fused");
  obs::Counter& batches =
      obs::globalRegistry().counter("net.backend.batches_ingested");
  obs::Counter& batchErrors =
      obs::globalRegistry().counter("net.backend.batch_errors");
  obs::Counter& duplicateBatches =
      obs::globalRegistry().counter("net.backend.duplicate_batches");
  obs::Counter& salvagedDrops =
      obs::globalRegistry().counter("net.backend.salvaged_message_drops");
  obs::Counter& gapsOpened =
      obs::globalRegistry().counter("net.backend.seq_gaps_opened");
  obs::Counter& gapsFilled =
      obs::globalRegistry().counter("net.backend.seq_gaps_filled");
  obs::Counter& acksSent =
      obs::globalRegistry().counter("net.backend.acks_sent");
};

BackendMetrics& backendMetrics() {
  static BackendMetrics metrics;
  return metrics;
}

}  // namespace

void Backend::registerReader(std::uint32_t readerId,
                             core::ArrayGeometry geometry) {
  std::lock_guard<std::mutex> lock(mutex_);
  readers_[readerId] = std::move(geometry);
}

caraoke::Result<bool> Backend::ingestFrame(
    const std::vector<std::uint8_t>& frame) {
  using R = caraoke::Result<bool>;
  auto decoded = decodeMessage(frame);
  if (!decoded.ok()) {
    backendMetrics().frameErrors.inc();
    return R::failure(decoded.error());
  }
  backendMetrics().frames.inc();
  ingest(decoded.value());
  return true;
}

std::size_t Backend::pendingSightings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sightings_.size();
}

std::size_t Backend::countsSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_.size();
}

std::size_t Backend::decodesSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decodes_.size();
}

caraoke::Result<BatchIngestStats> Backend::ingestBatch(
    const std::vector<std::uint8_t>& frame) {
  using R = caraoke::Result<BatchIngestStats>;
  auto decoded = decodeBatch(frame, BatchDecodePolicy::kSalvage);
  if (!decoded.ok()) {
    backendMetrics().batchErrors.inc();
    return R::failure(decoded.error());
  }
  const DecodedBatch& batch = decoded.value();
  BatchIngestStats stats;
  stats.droppedMessages = batch.droppedMessages;
  if (batch.droppedMessages > 0)
    backendMetrics().salvagedDrops.inc(batch.droppedMessages);

  // Frame decoding above touched no shared state; the dedup/gap
  // accounting and report buffers below do.
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch.hasHeader) {
    stats.readerId = batch.header.readerId;
    stats.seq = batch.header.seq;
    stats.hasAck = true;
    stats.ack = encodeAck({batch.header.readerId, batch.header.seq});
    backendMetrics().acksSent.inc();

    ReaderSeqState& state = seqState_[batch.header.readerId];
    if (state.seen.count(batch.header.seq) > 0) {
      // Retransmission of a batch we already have: re-ack, ingest nothing.
      stats.deduplicated = true;
      backendMetrics().duplicateBatches.inc();
      return stats;
    }
    state.seen.insert(batch.header.seq);
    if (batch.header.seq > state.maxSeq) {
      const std::uint32_t expected = state.maxSeq + 1;
      if (batch.header.seq > expected)
        backendMetrics().gapsOpened.inc(batch.header.seq - expected);
      state.maxSeq = batch.header.seq;
    } else {
      // Out-of-order arrival below the high-water mark fills a gap.
      backendMetrics().gapsFilled.inc();
    }
  }

  for (const auto& message : batch.messages) {
    ingestLocked(message);
    ++stats.accepted;
  }
  backendMetrics().batches.inc();
  return stats;
}

std::size_t Backend::gapCount(std::uint32_t readerId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seqState_.find(readerId);
  if (it == seqState_.end()) return 0;
  return static_cast<std::size_t>(it->second.maxSeq) - it->second.seen.size();
}

std::uint32_t Backend::highestSeq(std::uint32_t readerId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seqState_.find(readerId);
  return it == seqState_.end() ? 0 : it->second.maxSeq;
}

void Backend::ingest(const Message& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  ingestLocked(message);
}

void Backend::ingestLocked(const Message& message) {
  if (const auto* count = std::get_if<CountReport>(&message)) {
    backendMetrics().counts.inc();
    counts_.push_back(*count);
  } else if (const auto* sighting = std::get_if<SightingReport>(&message)) {
    backendMetrics().sightings.inc();
    sightings_.push_back(*sighting);
  } else if (const auto* decode = std::get_if<DecodeReport>(&message)) {
    backendMetrics().decodes.inc();
    decodes_.push_back(*decode);
  }
}

std::vector<FusedFix> Backend::fuse(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FusedFix> fixes;
  std::vector<bool> consumed(sightings_.size(), false);

  for (std::size_t i = 0; i < sightings_.size(); ++i) {
    if (consumed[i]) continue;
    for (std::size_t j = i + 1; j < sightings_.size(); ++j) {
      if (consumed[j]) continue;
      const SightingReport& a = sightings_[i];
      const SightingReport& b = sightings_[j];
      if (a.readerId == b.readerId) continue;
      if (std::abs(a.cfoHz - b.cfoHz) > config_.cfoToleranceHz) continue;
      if (std::abs(a.timestamp - b.timestamp) > config_.timeWindowSec)
        continue;
      const auto itA = readers_.find(a.readerId);
      const auto itB = readers_.find(b.readerId);
      if (itA == readers_.end() || itB == readers_.end()) continue;

      core::ConeConstraint coneA;
      coneA.apex = itA->second.center();
      coneA.axis = itA->second.baselineDirection(a.pairIndex);
      coneA.angleRad = a.angleRad;
      core::ConeConstraint coneB;
      coneB.apex = itB->second.center();
      coneB.axis = itB->second.baselineDirection(b.pairIndex);
      coneB.angleRad = b.angleRad;

      // Road-parallel baselines admit the paper's exact Eq. 15 method;
      // anything else falls back to the Newton grid.
      auto candidates = core::hyperbolaCandidates(coneA, coneB, config_.road);
      if (candidates.empty())
        candidates =
            core::localizeTwoReadersCandidates(coneA, coneB, config_.road);
      if (candidates.empty()) continue;
      const core::PositionFix* chosen = &candidates.front();
      if (!config_.preferredRowsY.empty()) {
        double bestRowGap = 1e18;
        for (const auto& c : candidates) {
          for (double rowY : config_.preferredRowsY) {
            const double gap = std::abs(c.position.y - rowY);
            if (gap < bestRowGap) {
              bestRowGap = gap;
              chosen = &c;
            }
          }
        }
      }

      FusedFix fused;
      fused.cfoHz = 0.5 * (a.cfoHz + b.cfoHz);
      fused.timestamp = 0.5 * (a.timestamp + b.timestamp);
      fused.position = chosen->position;
      fused.readerA = a.readerId;
      fused.readerB = b.readerId;
      fixes.push_back(fused);
      backendMetrics().fixes.inc();
      consumed[i] = consumed[j] = true;
      break;
    }
  }

  // Drop consumed and expired sightings.
  std::vector<SightingReport> keep;
  for (std::size_t i = 0; i < sightings_.size(); ++i) {
    if (consumed[i]) continue;
    if (now - sightings_[i].timestamp > config_.timeWindowSec) continue;
    keep.push_back(sightings_[i]);
  }
  sightings_ = std::move(keep);
  return fixes;
}

}  // namespace caraoke::net
