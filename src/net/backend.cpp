#include "net/backend.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "net/outbox.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace caraoke::net {

namespace {

struct BackendMetrics {
  obs::Counter& frames =
      obs::globalRegistry().counter("net.backend.frames_ingested");
  obs::Counter& frameErrors =
      obs::globalRegistry().counter("net.backend.frame_errors");
  obs::Counter& counts =
      obs::globalRegistry().counter("net.backend.count_reports");
  obs::Counter& sightings =
      obs::globalRegistry().counter("net.backend.sighting_reports");
  obs::Counter& decodes =
      obs::globalRegistry().counter("net.backend.decode_reports");
  obs::Counter& fixes = obs::globalRegistry().counter("net.backend.fixes_fused");
  obs::Counter& batches =
      obs::globalRegistry().counter("net.backend.batches_ingested");
  obs::Counter& batchErrors =
      obs::globalRegistry().counter("net.backend.batch_errors");
  obs::Counter& duplicateBatches =
      obs::globalRegistry().counter("net.backend.duplicate_batches");
  obs::Counter& salvagedDrops =
      obs::globalRegistry().counter("net.backend.salvaged_message_drops");
  obs::Counter& gapsOpened =
      obs::globalRegistry().counter("net.backend.seq_gaps_opened");
  obs::Counter& gapsFilled =
      obs::globalRegistry().counter("net.backend.seq_gaps_filled");
  obs::Counter& acksSent =
      obs::globalRegistry().counter("net.backend.acks_sent");
  obs::Counter& speedSamples =
      obs::globalRegistry().counter("net.backend.speed_samples");
  obs::Counter& speedFixes =
      obs::globalRegistry().counter("net.backend.speed_fixes");
  // Durability layer (zero unless a durability dir is configured).
  obs::Counter& walAppends =
      obs::globalRegistry().counter("net.backend.wal.appends");
  obs::Counter& walBytes =
      obs::globalRegistry().counter("net.backend.wal.bytes");
  obs::Counter& walFsyncs =
      obs::globalRegistry().counter("net.backend.wal.fsyncs");
  obs::Counter& walReplayed =
      obs::globalRegistry().counter("net.backend.wal.replayed");
  obs::Counter& walSalvaged =
      obs::globalRegistry().counter("net.backend.wal.salvaged");
  obs::Counter& snapshotsWritten =
      obs::globalRegistry().counter("net.backend.snapshots_written");
  obs::Counter& snapshotsRejected =
      obs::globalRegistry().counter("net.backend.snapshots_rejected");
  obs::Counter& restores =
      obs::globalRegistry().counter("net.backend.restores");
};

BackendMetrics& backendMetrics() {
  static BackendMetrics metrics;
  return metrics;
}

// Distinct non-zero trace ids aboard a decoded batch, first-appearance
// order — one backend.ingest event is emitted per journey, not per
// message.
std::vector<std::uint64_t> batchTraceIds(const std::vector<Message>& messages) {
  std::vector<std::uint64_t> out;
  for (const Message& m : messages) {
    const std::uint64_t id = messageTrace(m).traceId;
    if (id == 0) continue;
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

}  // namespace

Backend::Backend(BackendConfig config)
    : config_(std::move(config)), flight_(config_.flightCapacity) {
  // With durability configured the backend starts in `recovering`: no
  // ingestion (and a 503 /healthz) until restore() replays the log.
  recovering_.store(!config_.durability.dir.empty(),
                    std::memory_order_release);
  if (config_.expoPort >= 0) startExposition();
}

void Backend::recordEvent(const char* type, std::vector<obs::Field> fields) {
  obs::Event event;
  event.ts = obs::monotonicSeconds();
  event.type = type;
  event.fields = std::move(fields);
  if (obs::eventsAttached()) obs::emitEvent(event.type, event.fields);
  flight_.record(std::move(event));
}

void Backend::startExposition() {
  obs::ExpoOptions options;
  options.port = static_cast<std::uint16_t>(config_.expoPort);
  // expo.* self-metrics join net.backend.* in the process registry —
  // Registry::counter/gauge/histogram are get-or-create, so multiple
  // exposing backends in one test process share the family.
  options.selfRegistry = &obs::globalRegistry();
  obs::ExpoHandlers handlers;
  handlers.slowClient = [this](const char* reason, double ageSec) {
    // Runs on the expo server thread: ExpoServer.mutex_ is held, so this
    // is the ExpoServer.mutex_ -> Backend.mutex_ edge in DESIGN.md §10.
    std::lock_guard<std::mutex> lock(mutex_);
    recordEvent("expo.slow_client", {{"reason", reason}, {"age_sec", ageSec}});
  };
  // Backend metrics live in the process-wide registry (net.backend.*).
  handlers.metricsText = [] { return obs::globalRegistry().expositionText(); };
  handlers.metricsJson = [] { return obs::globalRegistry().jsonText(); };
  handlers.healthz = [this] {
    // Distinct recovering state: the backend is up but must not take
    // traffic until restore() finishes replaying (503 keeps load
    // balancers away; readers retry through their outboxes anyway).
    if (recovering_.load(std::memory_order_acquire))
      return obs::HealthStatus{false, "recovering"};
    return obs::HealthStatus{true, "backend"};
  };
  handlers.flight = [this](const obs::FlightQuery& query) {
    return flight_.jsonLines(query.maxEntries, query.trace);
  };
  handlers.trace = [this](const std::string& traceIdHex) {
    return flight_.jsonLines(0, traceIdHex);
  };
  auto server =
      std::make_unique<obs::ExpoServer>(std::move(options), std::move(handlers));
  if (server->start()) expo_ = std::move(server);
}

void Backend::registerReader(std::uint32_t readerId,
                             core::ArrayGeometry geometry) {
  std::lock_guard<std::mutex> lock(mutex_);
  readers_[readerId] = std::move(geometry);
}

caraoke::Result<bool> Backend::ingestFrame(
    const std::vector<std::uint8_t>& frame) {
  using R = caraoke::Result<bool>;
  auto decoded = decodeMessage(frame);
  if (!decoded.ok()) {
    backendMetrics().frameErrors.inc();
    return R::failure(decoded.error());
  }
  backendMetrics().frames.inc();
  ingest(decoded.value());
  return true;
}

std::size_t Backend::pendingSightings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sightings_.size();
}

std::size_t Backend::countsSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_.size();
}

std::size_t Backend::decodesSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decodes_.size();
}

caraoke::Result<BatchIngestStats> Backend::ingestBatch(
    const std::vector<std::uint8_t>& frame) {
  using R = caraoke::Result<BatchIngestStats>;
  auto decoded = decodeBatch(frame, BatchDecodePolicy::kSalvage);
  if (!decoded.ok()) {
    backendMetrics().batchErrors.inc();
    return R::failure(decoded.error());
  }
  const DecodedBatch& batch = decoded.value();
  BatchIngestStats stats;
  stats.droppedMessages = batch.droppedMessages;
  if (batch.droppedMessages > 0)
    backendMetrics().salvagedDrops.inc(batch.droppedMessages);

  // Trace provenance recovered from the v3 envelope: the ingest span
  // joins the first aboard journey's trace, and one backend.ingest event
  // per distinct trace marks the journey's arrival at the backend.
  const std::vector<std::uint64_t> traces = batchTraceIds(batch.messages);
  obs::ScopedTraceContext traceScope(
      traces.empty() ? obs::TraceContext{}
                     : obs::TraceContext{traces.front(), 0});
  obs::ObsSpan ingestSpan("net.backend.ingest_batch");

  // Frame decoding above touched no shared state; the dedup/gap
  // accounting and report buffers below do.
  std::lock_guard<std::mutex> lock(mutex_);
  if (recovering_.load(std::memory_order_acquire)) {
    // No ack while replaying: the reader's outbox holds the batch and
    // retransmits once we're healthy again.
    backendMetrics().batchErrors.inc();
    return R::failure("backend recovering: restore() pending");
  }
  if (batch.hasHeader) {
    stats.readerId = batch.header.readerId;
    stats.seq = batch.header.seq;
    stats.hasAck = true;
    stats.ack = encodeAck({batch.header.readerId, batch.header.seq});
    backendMetrics().acksSent.inc();

    // Dedup peek before the WAL append: retransmissions are re-acked but
    // never logged (replay therefore never sees a duplicate, so replay
    // equivalence needs no idempotence argument). find(), not
    // operator[], so the peek itself mutates nothing un-logged.
    const auto it = seqState_.find(batch.header.readerId);
    if (it != seqState_.end() && it->second.seen.count(batch.header.seq) > 0) {
      stats.deduplicated = true;
      backendMetrics().duplicateBatches.inc();
      return stats;
    }
  }

  if (wal_ != nullptr) {
    // Durability barrier: the frame reaches the log before any state
    // mutation. A failed append is treated as the process dying — no
    // ack, no mutation; the reader retransmits after our restart.
    const std::uint64_t bytesBefore = wal_->bytesWritten();
    const std::uint64_t fsyncsBefore = wal_->fsyncs();
    if (!wal_->append(frame)) {
      backendMetrics().batchErrors.inc();
      return R::failure("wal append failed");
    }
    backendMetrics().walAppends.inc();
    backendMetrics().walBytes.inc(wal_->bytesWritten() - bytesBefore);
    backendMetrics().walFsyncs.inc(wal_->fsyncs() - fsyncsBefore);
  }

  applyBatchLocked(batch, stats);
  backendMetrics().batches.inc();
  for (const std::uint64_t traceId : traces)
    recordEvent("backend.ingest", {{"reader_id", stats.readerId},
                                   {"seq", stats.seq},
                                   {"accepted", stats.accepted},
                                   {"trace", obs::traceHex(traceId)}});

  if (wal_ != nullptr && config_.durability.snapshotEveryAppends > 0 &&
      ++appendsSinceSnapshot_ >= config_.durability.snapshotEveryAppends)
    (void)snapshotNowLocked();
  return stats;
}

bool Backend::applyBatchLocked(const DecodedBatch& batch,
                               BatchIngestStats& stats) {
  if (batch.hasHeader) {
    ReaderSeqState& state = seqState_[batch.header.readerId];
    if (state.seen.count(batch.header.seq) > 0) {
      // Retransmission of a batch we already have: ingest nothing.
      stats.deduplicated = true;
      backendMetrics().duplicateBatches.inc();
      return false;
    }
    state.seen.insert(batch.header.seq);
    if (batch.header.seq > state.maxSeq) {
      const std::uint32_t expected = state.maxSeq + 1;
      if (batch.header.seq > expected)
        backendMetrics().gapsOpened.inc(batch.header.seq - expected);
      state.maxSeq = batch.header.seq;
    } else {
      // Out-of-order arrival below the high-water mark fills a gap.
      backendMetrics().gapsFilled.inc();
    }
  }
  for (const auto& message : batch.messages) {
    ingestLocked(message);
    ++stats.accepted;
  }
  return true;
}

std::size_t Backend::gapCount(std::uint32_t readerId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seqState_.find(readerId);
  if (it == seqState_.end()) return 0;
  return static_cast<std::size_t>(it->second.maxSeq) - it->second.seen.size();
}

std::uint32_t Backend::highestSeq(std::uint32_t readerId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = seqState_.find(readerId);
  return it == seqState_.end() ? 0 : it->second.maxSeq;
}

void Backend::ingest(const Message& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  ingestLocked(message);
}

void Backend::ingestLocked(const Message& message) {
  if (const auto* count = std::get_if<CountReport>(&message)) {
    backendMetrics().counts.inc();
    counts_.push_back(*count);
  } else if (const auto* sighting = std::get_if<SightingReport>(&message)) {
    backendMetrics().sightings.inc();
    sightings_.push_back(*sighting);
    // Feed the §7 speed-pairing angle track: the sighting reduced to its
    // along-road direction cosine, keeping trace lineage.
    SpeedSample sample;
    sample.readerId = sighting->readerId;
    sample.timestamp = sighting->timestamp;
    sample.cfoHz = sighting->cfoHz;
    sample.cosAlpha = std::cos(sighting->angleRad);
    sample.traceId = sighting->traceId;
    speedSamples_.push_back(sample);
    backendMetrics().speedSamples.inc();
  } else if (const auto* decode = std::get_if<DecodeReport>(&message)) {
    backendMetrics().decodes.inc();
    decodes_.push_back(*decode);
  }
}

std::vector<FusedFix> Backend::fuse(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FusedFix> fixes;
  std::vector<bool> consumed(sightings_.size(), false);

  for (std::size_t i = 0; i < sightings_.size(); ++i) {
    if (consumed[i]) continue;
    for (std::size_t j = i + 1; j < sightings_.size(); ++j) {
      if (consumed[j]) continue;
      const SightingReport& a = sightings_[i];
      const SightingReport& b = sightings_[j];
      if (a.readerId == b.readerId) continue;
      if (std::abs(a.cfoHz - b.cfoHz) > config_.cfoToleranceHz) continue;
      if (std::abs(a.timestamp - b.timestamp) > config_.timeWindowSec)
        continue;
      const auto itA = readers_.find(a.readerId);
      const auto itB = readers_.find(b.readerId);
      if (itA == readers_.end() || itB == readers_.end()) continue;

      core::ConeConstraint coneA;
      coneA.apex = itA->second.center();
      coneA.axis = itA->second.baselineDirection(a.pairIndex);
      coneA.angleRad = a.angleRad;
      core::ConeConstraint coneB;
      coneB.apex = itB->second.center();
      coneB.axis = itB->second.baselineDirection(b.pairIndex);
      coneB.angleRad = b.angleRad;

      // Road-parallel baselines admit the paper's exact Eq. 15 method;
      // anything else falls back to the Newton grid.
      auto candidates = core::hyperbolaCandidates(coneA, coneB, config_.road);
      if (candidates.empty())
        candidates =
            core::localizeTwoReadersCandidates(coneA, coneB, config_.road);
      if (candidates.empty()) continue;
      const core::PositionFix* chosen = &candidates.front();
      if (!config_.preferredRowsY.empty()) {
        double bestRowGap = 1e18;
        for (const auto& c : candidates) {
          for (double rowY : config_.preferredRowsY) {
            const double gap = std::abs(c.position.y - rowY);
            if (gap < bestRowGap) {
              bestRowGap = gap;
              chosen = &c;
            }
          }
        }
      }

      FusedFix fused;
      fused.cfoHz = 0.5 * (a.cfoHz + b.cfoHz);
      fused.timestamp = 0.5 * (a.timestamp + b.timestamp);
      fused.position = chosen->position;
      fused.readerA = a.readerId;
      fused.readerB = b.readerId;
      fixes.push_back(fused);
      backendMetrics().fixes.inc();
      consumed[i] = consumed[j] = true;
      break;
    }
  }

  // Drop consumed and expired sightings.
  std::vector<SightingReport> keep;
  for (std::size_t i = 0; i < sightings_.size(); ++i) {
    if (consumed[i]) continue;
    if (now - sightings_[i].timestamp > config_.timeWindowSec) continue;
    keep.push_back(sightings_[i]);
  }
  sightings_ = std::move(keep);
  return fixes;
}

std::size_t Backend::pendingSpeedSamples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return speedSamples_.size();
}

std::vector<SpeedFix> Backend::pairSpeeds(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpeedFix> fixes;

  // Cluster buffered samples by (reader, CFO): greedy assignment to the
  // first cluster whose mean CFO is within the association tolerance —
  // the same key fuse() uses, applied along the time axis.
  struct Cluster {
    std::uint32_t readerId = 0;
    double cfoSum = 0.0;
    std::vector<std::size_t> samples;  ///< Indices into speedSamples_.
    bool consumed = false;
    double meanCfo() const {
      return cfoSum / static_cast<double>(samples.size());
    }
  };
  std::vector<Cluster> clusters;
  for (std::size_t i = 0; i < speedSamples_.size(); ++i) {
    const SpeedSample& s = speedSamples_[i];
    Cluster* home = nullptr;
    for (Cluster& c : clusters) {
      if (c.readerId != s.readerId) continue;
      if (std::abs(c.meanCfo() - s.cfoHz) > config_.cfoToleranceHz) continue;
      home = &c;
      break;
    }
    if (home == nullptr) {
      clusters.push_back(Cluster{s.readerId, 0.0, {}, false});
      home = &clusters.back();
    }
    home->cfoSum += s.cfoHz;
    home->samples.push_back(i);
  }

  auto abeamOf = [this](const Cluster& c) -> std::optional<double> {
    if (c.samples.size() < config_.minAbeamSamples) return std::nullopt;
    std::vector<core::AngleSample> track;
    track.reserve(c.samples.size());
    for (std::size_t idx : c.samples)
      track.push_back({speedSamples_[idx].timestamp,
                       speedSamples_[idx].cosAlpha});
    std::sort(track.begin(), track.end(),
              [](const core::AngleSample& a, const core::AngleSample& b) {
                return a.time < b.time;
              });
    return core::findAbeamTime(track);
  };

  std::vector<bool> consumedSample(speedSamples_.size(), false);
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].consumed) continue;
    for (std::size_t j = i + 1; j < clusters.size(); ++j) {
      if (clusters[j].consumed) continue;
      Cluster& a = clusters[i];
      Cluster& b = clusters[j];
      if (a.readerId == b.readerId) continue;
      if (std::abs(a.meanCfo() - b.meanCfo()) > config_.cfoToleranceHz)
        continue;
      const auto itA = readers_.find(a.readerId);
      const auto itB = readers_.find(b.readerId);
      if (itA == readers_.end() || itB == readers_.end()) continue;
      const auto tA = abeamOf(a);
      const auto tB = abeamOf(b);
      if (!tA || !tB) continue;
      // Pole x positions along the road come from registered geometry.
      const double xA = itA->second.center().x;
      const double xB = itB->second.center().x;
      const auto speed = *tA <= *tB ? core::estimateSpeed(xA, *tA, xB, *tB)
                                    : core::estimateSpeed(xB, *tB, xA, *tA);
      if (!speed) continue;

      SpeedFix fix;
      fix.cfoHz = 0.5 * (a.meanCfo() + b.meanCfo());
      fix.speedMps = *speed;
      fix.abeamTimeA = *tA;
      fix.abeamTimeB = *tB;
      fix.readerA = a.readerId;
      fix.readerB = b.readerId;
      // Trace lineage: the readerA sighting nearest its abeam crossing.
      double bestGap = 1e18;
      for (std::size_t idx : a.samples) {
        const SpeedSample& s = speedSamples_[idx];
        if (s.traceId == 0) continue;
        const double gap = std::abs(s.timestamp - *tA);
        if (gap < bestGap) {
          bestGap = gap;
          fix.traceId = s.traceId;
        }
      }
      {
        // The speed-pairing span (and event) joins the originating
        // reader's trace — the end of the end-to-end journey.
        obs::ScopedTraceContext traceScope(
            obs::TraceContext{fix.traceId, 0});
        obs::ObsSpan span("net.backend.speed_pair");
        recordEvent("backend.speed_fix",
                    {{"reader_a", fix.readerA},
                     {"reader_b", fix.readerB},
                     {"cfo_hz", fix.cfoHz},
                     {"speed_mps", fix.speedMps},
                     {"t_abeam_a", fix.abeamTimeA},
                     {"t_abeam_b", fix.abeamTimeB},
                     {"trace", obs::traceHex(fix.traceId)}});
      }
      backendMetrics().speedFixes.inc();
      fixes.push_back(fix);
      a.consumed = true;
      b.consumed = true;
      for (std::size_t idx : a.samples) consumedSample[idx] = true;
      for (std::size_t idx : b.samples) consumedSample[idx] = true;
      break;
    }
  }

  // Drop consumed and expired samples.
  std::vector<SpeedSample> keepSamples;
  for (std::size_t i = 0; i < speedSamples_.size(); ++i) {
    if (consumedSample[i]) continue;
    if (now - speedSamples_[i].timestamp > config_.speedWindowSec) continue;
    keepSamples.push_back(speedSamples_[i]);
  }
  speedSamples_ = std::move(keepSamples);
  return fixes;
}

std::string Backend::walPath() const {
  return config_.durability.dir + "/backend.wal";
}

BackendSnapshot Backend::buildSnapshotLocked() const {
  BackendSnapshot snap;
  for (const auto& [readerId, state] : seqState_) {
    ReaderSeqRecord record;
    record.readerId = readerId;
    record.maxSeq = state.maxSeq;
    record.seen.assign(state.seen.begin(), state.seen.end());
    snap.seq.push_back(std::move(record));
  }
  snap.sightings = sightings_;
  snap.counts = counts_;
  snap.decodes = decodes_;
  snap.speedSamples.reserve(speedSamples_.size());
  for (const SpeedSample& s : speedSamples_)
    snap.speedSamples.push_back(
        {s.readerId, s.timestamp, s.cfoHz, s.cosAlpha, s.traceId});
  return snap;
}

void Backend::applySnapshotLocked(const BackendSnapshot& snapshot) {
  seqState_.clear();
  for (const ReaderSeqRecord& record : snapshot.seq) {
    ReaderSeqState& state = seqState_[record.readerId];
    state.maxSeq = record.maxSeq;
    state.seen.insert(record.seen.begin(), record.seen.end());
  }
  sightings_ = snapshot.sightings;
  counts_ = snapshot.counts;
  decodes_ = snapshot.decodes;
  speedSamples_.clear();
  speedSamples_.reserve(snapshot.speedSamples.size());
  for (const SpeedSampleRecord& s : snapshot.speedSamples)
    speedSamples_.push_back(
        {s.readerId, s.timestamp, s.cfoHz, s.cosAlpha, s.traceId});
}

std::vector<std::uint8_t> Backend::stateBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BackendSnapshot snap = buildSnapshotLocked();
  snap.walOffset = 0;  // Position in the log is not state.
  return encodeSnapshot(snap);
}

bool Backend::durable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_ != nullptr && wal_->ok();
}

bool Backend::snapshotNow() {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshotNowLocked();
}

bool Backend::snapshotNowLocked() {
  if (wal_ == nullptr || !wal_->ok()) return false;
  // The snapshot claims durable coverage of every log byte below its
  // offset, so flush first (this is the kOnSnapshot policy's flush
  // point; under the stricter policies it is nearly free).
  const std::uint64_t fsyncsBefore = wal_->fsyncs();
  if (!wal_->sync()) return false;
  backendMetrics().walFsyncs.inc(wal_->fsyncs() - fsyncsBefore);

  BackendSnapshot snap = buildSnapshotLocked();
  snap.walOffset = wal_->offset();
  const std::uint64_t seq = nextSnapshotSeq_;
  const std::vector<std::uint8_t> bytes = encodeSnapshot(snap);

  if (config_.durability.tearSnapshotAtSeq == seq) {
    // Chaos: die after writing the tmp file, before the rename — the
    // classic mid-snapshot crash. The loader must never surface this
    // file; the previous snapshot (or none) plus the WAL still covers
    // everything.
    const std::string tmpPath =
        config_.durability.dir + "/" + snapshotFileName(seq) + ".tmp";
    std::ofstream out(tmpPath, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size() / 2));
    wal_->kill();
    return false;
  }

  if (!writeSnapshotFile(config_.durability.dir, seq, bytes)) return false;
  ++nextSnapshotSeq_;
  appendsSinceSnapshot_ = 0;
  backendMetrics().snapshotsWritten.inc();
  recordEvent("backend.snapshot", {{"seq", seq},
                                   {"bytes", bytes.size()},
                                   {"wal_offset", snap.walOffset}});
  return true;
}

caraoke::Result<RestoreStats> Backend::restore(const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config_.durability.dir = dir;
  }
  recovering_.store(true, std::memory_order_release);
  return restore();
}

caraoke::Result<RestoreStats> Backend::restore() {
  using R = caraoke::Result<RestoreStats>;
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.durability.dir.empty())
    return R::failure("durability not configured (empty dir)");
  obs::ObsSpan span("net.backend.restore");
  std::error_code ec;
  std::filesystem::create_directories(config_.durability.dir, ec);

  RestoreStats out;
  LoadedSnapshot snapshot =
      loadNewestSnapshot(config_.durability.dir, &out.snapshotsRejected);
  out.snapshotSeq = snapshot.seq;
  if (out.snapshotsRejected > 0)
    backendMetrics().snapshotsRejected.inc(out.snapshotsRejected);
  applySnapshotLocked(snapshot.state);

  // Replay the WAL tail: records entirely covered by the snapshot's
  // offset are already in the state; everything after is applied in log
  // order. Damage (torn tail from a crash mid-append, or corruption)
  // ends the replay at the damage point — those batches were never
  // acked, so the readers' outboxes still hold them.
  const std::string path = walPath();
  const WalReadResult log = readWalFile(path);
  std::uint64_t cursor = 0;
  for (const auto& payload : log.payloads) {
    const std::uint64_t end =
        cursor + kWalRecordOverheadBytes + payload.size();
    if (end > snapshot.state.walOffset) {
      auto decoded = decodeBatch(payload, BatchDecodePolicy::kSalvage);
      if (decoded.ok()) {
        BatchIngestStats replayStats;
        applyBatchLocked(decoded.value(), replayStats);
        ++out.replayedRecords;
      }
    }
    cursor = end;
  }
  out.corruptRecords = log.corruptRecords;
  out.salvagedBytes = log.salvagedBytes;
  backendMetrics().walReplayed.inc(out.replayedRecords);
  if (out.salvagedBytes > 0)
    backendMetrics().walSalvaged.inc(out.salvagedBytes);

  // Truncate the torn tail before resuming appends: records written
  // after un-truncated damage would be unreachable (the parser stops at
  // the damage) and silently lost on the *next* restore.
  if (log.salvagedBytes > 0)
    (void)::truncate(path.c_str(), static_cast<off_t>(log.intactBytes));

  auto writer = std::make_unique<WalWriter>(
      path, config_.durability.fsyncPolicy, config_.durability.fsyncEveryN);
  if (!writer->ok()) return R::failure("cannot open wal for append");
  if (config_.durability.tearWalAtAppend > 0)
    writer->injectTear(config_.durability.tearWalAtAppend,
                       config_.durability.tearWalKeepBytes);
  wal_ = std::move(writer);
  nextSnapshotSeq_ = newestSnapshotSeq(config_.durability.dir) + 1;
  appendsSinceSnapshot_ = 0;
  backendMetrics().restores.inc();
  recordEvent("backend.restore",
              {{"snapshot_seq", out.snapshotSeq},
               {"replayed", out.replayedRecords},
               {"corrupt_records", out.corruptRecords},
               {"salvaged_bytes", out.salvagedBytes},
               {"snapshots_rejected", out.snapshotsRejected}});
  recovering_.store(false, std::memory_order_release);
  return out;
}

}  // namespace caraoke::net
