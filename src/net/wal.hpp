// Write-ahead log for the backend durability layer.
//
// Backend::ingestBatch appends every accepted uplink frame here *before*
// mutating in-RAM state, so a crashed backend replays the log and arrives
// at the exact pre-crash state (see net/snapshot for the compaction
// half). The format is deliberately dumb — an append-only sequence of
// CRC-framed records, one per ingested batch frame:
//
//   record := [magic u16 = 0xCA1F] [len u32] [payload bytes x len]
//             [crc32 u32 over magic..payload]
//
// The reader's contract mirrors the salvage-decode posture of the v2
// batch envelope (and the collision-recovery philosophy in PAPERS.md):
// recover every intact record, never abort the whole log for one bad
// byte. A torn tail (the append in flight when the process died) or a
// corrupt record ends the replay *at that point* — everything before it
// is recovered, the damage is counted, and parsing never fails. That is
// exactly the right semantics for a WAL: a record that was not fully
// written was never acknowledged to the reader, so the reader's outbox
// still holds the batch and will retransmit it after restart.
//
// Fsync policy trades durability for ingest latency (measured in
// bench_backend_ingest_durable; see EXPERIMENTS.md):
//   kEveryAppend   fsync after every record — no acked batch can be lost.
//   kEveryN        fsync every N appends — bounded loss window.
//   kOnSnapshot    fsync only when a snapshot is cut — fastest; a crash
//                  loses the OS-buffered tail, which the readers'
//                  retransmit machinery repairs (acked-but-lost batches
//                  are re-ingested, then deduped by the restored seq map
//                  only if they made it to disk — so this policy weakens
//                  exactly-once to at-least-once-on-power-loss; process
//                  crashes with a live kernel lose nothing).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace caraoke::net {

/// WAL record framing magic (registered in tools/caraoke_lint.py's
/// wireversion baseline alongside the batch envelope magics).
inline constexpr std::uint16_t kWalMagic = 0xCA1F;

/// Bytes of framing around each payload: magic + len + crc32.
inline constexpr std::size_t kWalRecordOverheadBytes = 10;

/// When appends hit the platter.
enum class WalFsyncPolicy {
  kEveryAppend = 0,
  kEveryN = 1,
  kOnSnapshot = 2,
};

const char* walFsyncPolicyName(WalFsyncPolicy policy);

/// Append-only WAL writer over one file (created if absent, appended if
/// present — offset() resumes from the existing size, which is how a
/// restored backend continues its own log).
///
/// Not internally locked: Backend calls it under its state mutex, which
/// is also what keeps WAL order identical to state-mutation order. The
/// capability annotation lives at the owning side — `Backend::wal_` is
/// CARAOKE_GUARDED_BY(mutex_) (see net/backend.hpp and DESIGN.md §10) —
/// so every append/offset call is still statically tied to that mutex.
class WalWriter {
 public:
  WalWriter(std::string path, WalFsyncPolicy policy,
            std::size_t fsyncEveryN = 8);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// True when the file is open and the writer has not crashed.
  bool ok() const { return fd_ >= 0 && !dead_; }

  /// Frame `payload` into a record and append it. False on I/O failure
  /// or after an injected crash — the caller must then treat the process
  /// as dying (no ack, no state mutation).
  bool append(std::span<const std::uint8_t> payload);

  /// Explicit fsync (the kOnSnapshot policy's flush point). False when
  /// the writer is dead or fsync fails.
  bool sync();

  /// Bytes in the file = offset the next record starts at. Snapshots
  /// store this so replay begins exactly after the last state they
  /// already contain.
  std::uint64_t offset() const { return offset_; }

  std::uint64_t appends() const { return appends_; }
  std::uint64_t bytesWritten() const { return bytesWritten_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

  /// Chaos injection: the `atAppend`-th append (1-based) writes only
  /// `keepBytes` of its encoded record (0 = half of it) and then the
  /// writer goes dead — every later append and sync fails. From the
  /// filesystem's point of view this is indistinguishable from SIGKILL
  /// landing mid-write: a real torn record on disk.
  void injectTear(std::uint64_t atAppend, std::size_t keepBytes = 0);

  /// Chaos injection: simulated process death between writes. The file
  /// is left exactly as-is; every later append and sync fails.
  void kill() { dead_ = true; }

 private:
  bool writeAll(const std::uint8_t* data, std::size_t size);

  std::string path_;
  WalFsyncPolicy policy_;
  std::size_t fsyncEveryN_;
  int fd_ = -1;
  bool dead_ = false;
  std::uint64_t offset_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t sinceFsync_ = 0;
  std::uint64_t tearAtAppend_ = 0;
  std::size_t tearKeepBytes_ = 0;
};

/// What parseWal recovered. Parsing NEVER fails: damage ends recovery at
/// the damaged record and is counted, the intact prefix is always
/// returned (the salvage contract the crash suite fuzzes).
struct WalReadResult {
  std::vector<std::vector<std::uint8_t>> payloads;
  /// Byte offset just past the last intact record — where a writer
  /// resuming this log would truncate to (we never truncate; appends
  /// after a torn tail are unreachable by the parser and harmless).
  std::uint64_t intactBytes = 0;
  /// Records lost to a torn tail or corruption (0 or 1 per parse: damage
  /// ends the log, so at most the damaged record itself is counted here;
  /// bytes beyond it land in salvagedBytes).
  std::size_t corruptRecords = 0;
  /// Bytes past the intact prefix that were skipped (torn tail included).
  std::uint64_t salvagedBytes = 0;
};

/// Parse a WAL image from memory (the fuzz tests' entry point).
WalReadResult parseWal(std::span<const std::uint8_t> bytes);

/// Read + parse a WAL file. A missing file is an empty log, not an
/// error — a fresh durability dir restores to an empty backend.
WalReadResult readWalFile(const std::string& path);

}  // namespace caraoke::net
