#include "net/scrape.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace caraoke::net {

namespace {

HttpResponse fail(const char* what) {
  HttpResponse r;
  r.error = what;
  if (errno != 0) {
    r.error += ": ";
    r.error += std::strerror(errno);
  }
  return r;
}

// Non-blocking connect with a poll() deadline, then back to blocking
// mode: a reader whose pole lost power leaves a SYN hanging — the
// scraper must move on to the next reader within the timeout.
int connectWithTimeout(const sockaddr_in& addr, int timeoutMs) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    if (::poll(&pfd, 1, timeoutMs) <= 0) {
      ::close(fd);
      return -1;
    }
    int soError = 0;
    socklen_t len = sizeof(soError);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
        soError != 0) {
      errno = soError != 0 ? soError : errno;
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

}  // namespace

HttpResponse httpGet(const std::string& host, std::uint16_t port,
                     const std::string& target, int timeoutMs) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  errno = 0;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return fail("bad host literal");

  const int fd = connectWithTimeout(addr, timeoutMs);
  if (fd < 0) return fail("connect failed");

  timeval tv{};
  tv.tv_sec = timeoutMs / 1000;
  tv.tv_usec = (timeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return fail("send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  // HTTP/1.0, Connection: close — the reply is everything until EOF.
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return fail("recv failed");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > (8u << 20)) break;  // runaway peer: 8 MiB cap
  }
  ::close(fd);

  const std::size_t headerEnd = raw.find("\r\n\r\n");
  if (headerEnd == std::string::npos) return fail("truncated response");
  const std::size_t lineEnd = raw.find("\r\n");
  // Status line: "HTTP/1.x NNN Reason".
  const std::string statusLine = raw.substr(0, lineEnd);
  const std::size_t sp = statusLine.find(' ');
  if (sp == std::string::npos || sp + 4 > statusLine.size())
    return fail("malformed status line");
  int status = 0;
  for (std::size_t i = sp + 1; i < statusLine.size() && statusLine[i] != ' ';
       ++i) {
    if (statusLine[i] < '0' || statusLine[i] > '9')
      return fail("malformed status code");
    status = status * 10 + (statusLine[i] - '0');
  }

  HttpResponse response;
  response.ok = true;
  response.status = status;
  response.body = raw.substr(headerEnd + 4);
  // Pull Content-Type out of the header block (case-sensitive match is
  // fine: the only peer is obs::ExpoServer, which emits it verbatim).
  std::size_t pos = lineEnd + 2;
  while (pos < headerEnd) {
    std::size_t end = raw.find("\r\n", pos);
    if (end == std::string::npos || end > headerEnd) end = headerEnd;
    const std::string header = raw.substr(pos, end - pos);
    const std::string key = "Content-Type:";
    if (header.rfind(key, 0) == 0) {
      std::size_t v = key.size();
      while (v < header.size() && header[v] == ' ') ++v;
      response.contentType = header.substr(v);
    }
    pos = end + 2;
  }
  return response;
}

}  // namespace caraoke::net
