#include "net/scrape.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace caraoke::net {

namespace {

// The header block gets its own (generous) bound so a peer that never
// sends the blank line can't evade the body cap by padding headers.
constexpr std::size_t kMaxHeaderBytes = 64u << 10;

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpResponse failWith(std::string what, int err) {
  HttpResponse r;
  r.error = std::move(what);
  if (err != 0) {
    r.error += ": ";
    r.error += std::strerror(err);
  }
  return r;
}

// Parse a complete raw HTTP/1.0 reply (status line + headers + body).
HttpResponse parseRaw(const std::string& raw) {
  const std::size_t headerEnd = raw.find("\r\n\r\n");
  if (headerEnd == std::string::npos) return failWith("truncated response", 0);
  const std::size_t lineEnd = raw.find("\r\n");
  // Status line: "HTTP/1.x NNN Reason".
  const std::string statusLine = raw.substr(0, lineEnd);
  const std::size_t sp = statusLine.find(' ');
  if (sp == std::string::npos || sp + 4 > statusLine.size())
    return failWith("malformed status line", 0);
  int status = 0;
  for (std::size_t i = sp + 1; i < statusLine.size() && statusLine[i] != ' ';
       ++i) {
    if (statusLine[i] < '0' || statusLine[i] > '9')
      return failWith("malformed status code", 0);
    status = status * 10 + (statusLine[i] - '0');
  }

  HttpResponse response;
  response.ok = true;
  response.status = status;
  response.body = raw.substr(headerEnd + 4);
  // Pull Content-Type out of the header block (case-sensitive match is
  // fine: the only peer is obs::ExpoServer, which emits it verbatim).
  std::size_t pos = lineEnd + 2;
  while (pos < headerEnd) {
    std::size_t end = raw.find("\r\n", pos);
    if (end == std::string::npos || end > headerEnd) end = headerEnd;
    const std::string header = raw.substr(pos, end - pos);
    const std::string key = "Content-Type:";
    if (header.rfind(key, 0) == 0) {
      std::size_t v = key.size();
      while (v < header.size() && header[v] == ' ') ++v;
      response.contentType = header.substr(v);
    }
    pos = end + 2;
  }
  return response;
}

// Per-request state machine driven by ScrapeSet::run's poll loop.
struct Flight {
  enum class State { kConnecting, kSending, kReceiving, kDone };
  State state = State::kDone;
  int fd = -1;
  std::string request;       // bytes still to send (consumed from front)
  std::size_t sent = 0;
  std::string raw;           // reply bytes accumulated so far
  std::size_t headerEnd = std::string::npos;
  HttpResponse result;       // filled when state hits kDone
};

void finish(Flight& f, HttpResponse result) {
  if (f.fd >= 0) {
    ::close(f.fd);
    f.fd = -1;
  }
  f.result = std::move(result);
  f.state = Flight::State::kDone;
}

// Launch one request: resolve, non-blocking connect, classify. Failures
// finish the flight immediately (bad literal, port 0, ENFILE, ...).
void launch(Flight& f, const ScrapeRequest& req) {
  errno = 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(req.port);
  if (req.port == 0) {
    finish(f, failWith("bad target port", 0));
    return;
  }
  if (::inet_pton(AF_INET, req.host.c_str(), &addr.sin_addr) != 1) {
    finish(f, failWith("bad host literal", 0));
    return;
  }
  f.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (f.fd < 0) {
    finish(f, failWith("socket failed", errno));
    return;
  }
  f.request =
      "GET " + req.target + " HTTP/1.0\r\nHost: " + req.host + "\r\n\r\n";
  const int rc = ::connect(f.fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc == 0) {
    f.state = Flight::State::kSending;
  } else if (errno == EINPROGRESS) {
    f.state = Flight::State::kConnecting;
  } else {
    finish(f, failWith("connect failed", errno));
  }
}

// Push request bytes; returns once EAGAIN, completion, or error.
void driveSend(Flight& f) {
  while (f.sent < f.request.size()) {
    const ssize_t n = ::send(f.fd, f.request.data() + f.sent,
                             f.request.size() - f.sent, MSG_NOSIGNAL);
    if (n > 0) {
      f.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    finish(f, failWith("send failed", errno));
    return;
  }
  f.state = Flight::State::kReceiving;
}

// Pull reply bytes; EOF completes the request (HTTP/1.0 Connection:
// close framing). Enforces the header and body byte caps as data
// arrives, so a runaway peer is cut off mid-stream, not after the
// allocation.
void driveRecv(Flight& f, std::size_t maxBodyBytes) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(f.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      f.raw.append(buf, static_cast<std::size_t>(n));
      if (f.headerEnd == std::string::npos) {
        f.headerEnd = f.raw.find("\r\n\r\n");
        if (f.headerEnd == std::string::npos &&
            f.raw.size() > kMaxHeaderBytes) {
          finish(f, failWith("header block exceeds cap", 0));
          return;
        }
      }
      if (f.headerEnd != std::string::npos &&
          f.raw.size() - (f.headerEnd + 4) > maxBodyBytes) {
        finish(f, failWith("response body exceeds " +
                               std::to_string(maxBodyBytes) + " byte cap",
                           0));
        return;
      }
      continue;
    }
    if (n == 0) {  // EOF: reply complete
      finish(f, parseRaw(f.raw));
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    finish(f, failWith("recv failed", errno));
    return;
  }
}

}  // namespace

std::vector<HttpResponse> ScrapeSet::run(int deadlineMs) {
  std::vector<ScrapeRequest> requests;
  requests.swap(requests_);  // consume: the set is reusable

  std::vector<Flight> flights(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    launch(flights[i], requests[i]);

  const double deadline = nowMs() + deadlineMs;
  std::vector<pollfd> pfds;
  std::vector<std::size_t> owner;  // pfds index -> flights index
  for (;;) {
    pfds.clear();
    owner.clear();
    for (std::size_t i = 0; i < flights.size(); ++i) {
      Flight& f = flights[i];
      if (f.state == Flight::State::kDone) continue;
      pollfd pfd{};
      pfd.fd = f.fd;
      pfd.events = f.state == Flight::State::kReceiving
                       ? static_cast<short>(POLLIN)
                       : static_cast<short>(POLLOUT);
      pfds.push_back(pfd);
      owner.push_back(i);
    }
    if (pfds.empty()) break;  // everything resolved

    const double remaining = deadline - nowMs();
    if (remaining <= 0.0) break;
    const int rc =
        ::poll(pfds.data(), pfds.size(), static_cast<int>(remaining) + 1);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;  // timeout slice or EINTR: re-check deadline

    for (std::size_t p = 0; p < pfds.size(); ++p) {
      if (pfds[p].revents == 0) continue;
      Flight& f = flights[owner[p]];
      if (f.state == Flight::State::kConnecting) {
        int soError = 0;
        socklen_t len = sizeof(soError);
        if ((pfds[p].revents & (POLLERR | POLLHUP)) != 0 ||
            ::getsockopt(f.fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
            soError != 0) {
          finish(f, failWith("connect failed", soError));
          continue;
        }
        f.state = Flight::State::kSending;
      }
      if (f.state == Flight::State::kSending) driveSend(f);
      if (f.state == Flight::State::kReceiving) driveRecv(f, maxBodyBytes_);
    }
  }

  std::vector<HttpResponse> results(flights.size());
  for (std::size_t i = 0; i < flights.size(); ++i) {
    Flight& f = flights[i];
    if (f.state != Flight::State::kDone)
      finish(f, failWith("scrape deadline exceeded", 0));
    results[i] = std::move(f.result);
  }
  return results;
}

HttpResponse httpGet(const std::string& host, std::uint16_t port,
                     const std::string& target, int timeoutMs,
                     std::size_t maxBodyBytes) {
  ScrapeSet set(maxBodyBytes);
  set.add({host, port, target});
  std::vector<HttpResponse> results = set.run(timeoutMs);
  return results.empty() ? failWith("scrape set empty", 0)
                         : std::move(results.front());
}

}  // namespace caraoke::net
