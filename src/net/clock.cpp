#include "net/clock.hpp"

namespace caraoke::net {

void ReaderClock::ntpSync(double trueTime, double residualRmsSec, Rng& rng) {
  offsetSec_ = rng.gaussian(0.0, residualRmsSec);
  lastSync_ = trueTime;
}

}  // namespace caraoke::net
