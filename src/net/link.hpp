// Lossy uplink channel model: the simulated LTE hop between a reader and
// the backend.
//
// Real vehicular links drop, corrupt, duplicate, reorder, and delay
// frames; the paper's readers report over exactly such a duty-cycled
// cellular modem (§10, footnote 15). UplinkLink models one direction of
// that channel deterministically (all randomness comes from the injected
// Rng, so chaos runs replay bit-for-bit), and a FaultPlan lets tests
// script hard outages ("drop everything in [t1, t2)") on top of the
// steady-state loss process.
//
// Usage: `send(frame, now)` enqueues a frame through the loss/latency
// process; `deliver(now)` returns everything that has arrived by `now`,
// in arrival order. A reader<->backend pair uses two instances: one for
// data uplink, one for the ack downlink.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace caraoke::net {

/// Steady-state channel impairments. Probabilities are per frame except
/// bitFlipPerBit, which is per transmitted bit.
struct LinkConfig {
  double dropProbability = 0.0;       ///< Frame vanishes entirely.
  double bitFlipPerBit = 0.0;         ///< Independent bit-corruption rate.
  double duplicateProbability = 0.0;  ///< Frame also arrives a second time.
  double reorderProbability = 0.0;    ///< Frame is held back extra long.
  double latencyMeanSec = 0.05;       ///< Base one-way delay.
  double latencyJitterSec = 0.02;     ///< Uniform extra delay in [0, j).
  /// Held-back (reordered) frames get this many extra latency means.
  double reorderHoldbackFactor = 3.0;
};

/// A scripted total outage: every frame sent with startSec <= t < endSec
/// is dropped, regardless of the steady-state drop rate.
struct FaultWindow {
  double startSec = 0.0;
  double endSec = 0.0;
};

/// Outage schedule for scripting chaos scenarios.
struct FaultPlan {
  std::vector<FaultWindow> outages;

  bool outageActive(double t) const {
    for (const auto& w : outages)
      if (t >= w.startSec && t < w.endSec) return true;
    return false;
  }
};

/// Per-instance delivery statistics (the aggregate view also lands in the
/// global obs registry under net.link.*).
struct LinkStats {
  std::uint64_t sent = 0;        ///< Frames handed to send().
  std::uint64_t dropped = 0;     ///< Random drops.
  std::uint64_t outageDrops = 0; ///< Drops forced by the fault plan.
  std::uint64_t corrupted = 0;   ///< Frames with >= 1 flipped bit.
  std::uint64_t duplicated = 0;  ///< Extra copies injected.
  std::uint64_t reordered = 0;   ///< Frames held back past later sends.
  std::uint64_t delivered = 0;   ///< Frames returned by deliver().
};

/// One direction of a lossy, delayed frame pipe.
class UplinkLink {
 public:
  UplinkLink(LinkConfig config, Rng rng, FaultPlan plan = {});

  /// Push a frame into the channel at time `now`.
  void send(std::vector<std::uint8_t> frame, double now);

  /// Frames that have arrived by `now`, in arrival order; each is
  /// returned exactly once.
  std::vector<std::vector<std::uint8_t>> deliver(double now);

  /// Frames in the pipe that have not been delivered yet.
  std::size_t inFlight() const { return inFlight_.size(); }

  const LinkStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  FaultPlan& plan() { return plan_; }

 private:
  struct InFlightFrame {
    double arrivalSec = 0.0;
    std::uint64_t sendIndex = 0;  ///< Tie-break: FIFO for equal arrivals.
    std::vector<std::uint8_t> frame;
  };

  void enqueue(std::vector<std::uint8_t> frame, double now, bool duplicate);

  LinkConfig config_;
  Rng rng_;
  FaultPlan plan_;
  std::vector<InFlightFrame> inFlight_;
  std::uint64_t sendCounter_ = 0;
  LinkStats stats_;
};

}  // namespace caraoke::net
