#include "net/outbox.hpp"

#include <algorithm>
#include <span>

#include "phy/crc.hpp"

namespace caraoke::net {

std::vector<std::uint8_t> encodeAck(const Ack& ack) {
  ByteWriter w;
  w.u16(kAckMagic);
  w.u32(ack.readerId);
  w.u32(ack.seq);
  std::vector<std::uint8_t> out = w.bytes();
  const std::uint32_t crc = phy::crc32(out);
  ByteWriter trailer;
  trailer.u32(crc);
  out.insert(out.end(), trailer.bytes().begin(), trailer.bytes().end());
  return out;
}

caraoke::Result<Ack> decodeAck(const std::vector<std::uint8_t>& bytes) {
  using R = caraoke::Result<Ack>;
  if (bytes.size() != 14) return R::failure("bad ack length");
  ByteReader r(bytes);
  std::uint16_t magic = 0;
  Ack ack;
  std::uint32_t storedCrc = 0;
  if (!r.u16(magic) || magic != kAckMagic) return R::failure("bad ack magic");
  if (!r.u32(ack.readerId) || !r.u32(ack.seq) || !r.u32(storedCrc))
    return R::failure("truncated ack");
  const std::uint32_t computed =
      phy::crc32(std::span<const std::uint8_t>(bytes.data(), 10));
  if (storedCrc != computed) return R::failure("ack crc mismatch");
  return ack;
}

namespace {

std::string prefixed(const std::string& prefix, const char* name) {
  return prefix + "." + name;
}

std::vector<std::uint64_t> distinctTraceIds(
    const std::vector<Message>& messages) {
  std::vector<std::uint64_t> out;
  for (const Message& m : messages) {
    const std::uint64_t id = messageTrace(m).traceId;
    if (id == 0) continue;
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

}  // namespace

Outbox::Outbox(OutboxConfig config, Rng rng, obs::Registry* registry)
    : config_(std::move(config)),
      rng_(rng),
      sealedCtr_((registry ? *registry : obs::globalRegistry())
                     .counter(prefixed(config_.metricsPrefix, "sealed"))),
      transmissionsCtr_(
          (registry ? *registry : obs::globalRegistry())
              .counter(prefixed(config_.metricsPrefix, "transmissions"))),
      retriesCtr_((registry ? *registry : obs::globalRegistry())
                      .counter(prefixed(config_.metricsPrefix, "retries"))),
      ackedCtr_((registry ? *registry : obs::globalRegistry())
                    .counter(prefixed(config_.metricsPrefix, "acked"))),
      shedCountsCtr_(
          (registry ? *registry : obs::globalRegistry())
              .counter(prefixed(config_.metricsPrefix, "shed_counts"))),
      shedBatchesCtr_(
          (registry ? *registry : obs::globalRegistry())
              .counter(prefixed(config_.metricsPrefix, "shed_batches"))),
      expiredCtr_((registry ? *registry : obs::globalRegistry())
                      .counter(prefixed(config_.metricsPrefix, "expired"))),
      pendingBytesGauge_(
          (registry ? *registry : obs::globalRegistry())
              .gauge(prefixed(config_.metricsPrefix, "pending_bytes"))),
      pendingBatchesGauge_(
          (registry ? *registry : obs::globalRegistry())
              .gauge(prefixed(config_.metricsPrefix, "pending_batches"))) {}

void Outbox::add(const Message& message) {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.push_back(message);
}

std::size_t Outbox::openMessages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

std::size_t Outbox::pendingBatches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::size_t Outbox::bufferedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bufferedBytes_;
}

std::size_t Outbox::consecutiveFailures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return consecutiveFailures_;
}

std::uint32_t Outbox::nextSeq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nextSeq_;
}

void Outbox::updateGauge() {
  pendingBytesGauge_.set(static_cast<double>(bufferedBytes_));
  pendingBatchesGauge_.set(static_cast<double>(pending_.size()));
}

void Outbox::rebuildFrame(PendingBatch& batch) {
  bufferedBytes_ -= batch.frame.size();
  batch.frame = encodeBatchV3({config_.readerId, batch.seq}, batch.messages);
  bufferedBytes_ += batch.frame.size();
}

bool Outbox::seal(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_.empty()) return false;
  PendingBatch batch;
  batch.seq = nextSeq_++;
  batch.messages = std::move(open_);
  open_.clear();
  batch.frame = encodeBatchV3({config_.readerId, batch.seq}, batch.messages);
  batch.attempts = 0;
  batch.nextAttemptSec = now;  // eligible immediately
  batch.backoffSec = config_.initialBackoffSec;
  bufferedBytes_ += batch.frame.size();
  pending_.push_back(std::move(batch));
  sealedCtr_.inc();
  enforceBudget();
  updateGauge();
  return true;
}

void Outbox::enforceBudget() {
  if (bufferedBytes_ <= config_.maxBufferedBytes) return;

  // Pass 1: shed CountReports, oldest batch first. Counts are periodic
  // samples the backend can re-derive from later reports; identities and
  // sightings are unrecoverable, so they stay.
  for (auto& batch : pending_) {
    if (bufferedBytes_ <= config_.maxBufferedBytes) break;
    std::size_t before = batch.messages.size();
    batch.messages.erase(
        std::remove_if(batch.messages.begin(), batch.messages.end(),
                       [](const Message& m) {
                         return std::holds_alternative<CountReport>(m);
                       }),
        batch.messages.end());
    const std::size_t shed = before - batch.messages.size();
    if (shed == 0) continue;
    shedCountsCtr_.inc(shed);
    rebuildFrame(batch);
  }

  // Pass 2: nothing left to shed gently — drop whole batches, oldest
  // first. This loses data (and leaves a permanent sequence gap the
  // backend will account); it is the policy of last resort.
  while (bufferedBytes_ > config_.maxBufferedBytes && pending_.size() > 1) {
    bufferedBytes_ -= pending_.front().frame.size();
    pending_.pop_front();
    shedBatchesCtr_.inc();
  }
}

std::vector<OutboxTransmission> Outbox::collectTransmissions(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OutboxTransmission> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->nextAttemptSec > now) {
      ++it;
      continue;
    }
    ++it->attempts;
    transmissionsCtr_.inc();
    if (it->attempts > 1) {
      retriesCtr_.inc();
      ++consecutiveFailures_;
    }
    OutboxTransmission tx;
    tx.seq = it->seq;
    tx.attempt = it->attempts;
    tx.frame = it->frame;
    tx.traceIds = distinctTraceIds(it->messages);
    out.push_back(std::move(tx));

    if (config_.maxAttempts > 0 && it->attempts >= config_.maxAttempts) {
      // Final attempt: transmit it, then stop holding the batch.
      bufferedBytes_ -= it->frame.size();
      it = pending_.erase(it);
      expiredCtr_.inc();
      continue;
    }
    const double jitter =
        config_.jitterFraction > 0.0
            ? rng_.uniform(-config_.jitterFraction, config_.jitterFraction)
            : 0.0;
    it->nextAttemptSec = now + it->backoffSec * (1.0 + jitter);
    it->backoffSec =
        std::min(it->backoffSec * config_.backoffMultiplier,
                 config_.maxBackoffSec);
    ++it;
  }
  if (!out.empty()) updateGauge();
  return out;
}

bool Outbox::onAckFrame(const std::vector<std::uint8_t>& frame, double now) {
  // Decode outside the lock: CRC checking needs no outbox state.
  const auto ack = decodeAck(frame);
  if (!ack.ok()) return false;
  if (ack.value().readerId != config_.readerId) return false;
  return onAck(ack.value().seq, now);
}

bool Outbox::onAck(std::uint32_t seq, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  return onAckLocked(seq, now);
}

bool Outbox::onAckLocked(std::uint32_t seq, double) {
  // Any well-formed ack addressed to us proves the round trip works.
  consecutiveFailures_ = 0;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->seq != seq) continue;
    bufferedBytes_ -= it->frame.size();
    pending_.erase(it);
    ackedCtr_.inc();
    updateGauge();
    return true;
  }
  return false;  // duplicate/late ack for an already-forgotten batch
}

double Outbox::nextAttemptTime() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& batch : pending_)
    earliest = std::min(earliest, batch.nextAttemptSec);
  return earliest;
}

}  // namespace caraoke::net
