#include "net/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "net/message.hpp"
#include "phy/crc.hpp"

namespace caraoke::net {

const char* walFsyncPolicyName(WalFsyncPolicy policy) {
  switch (policy) {
    case WalFsyncPolicy::kEveryAppend:
      return "every_append";
    case WalFsyncPolicy::kEveryN:
      return "every_n";
    case WalFsyncPolicy::kOnSnapshot:
      return "on_snapshot";
  }
  return "unknown";
}

WalWriter::WalWriter(std::string path, WalFsyncPolicy policy,
                     std::size_t fsyncEveryN)
    : path_(std::move(path)),
      policy_(policy),
      fsyncEveryN_(fsyncEveryN == 0 ? 1 : fsyncEveryN) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ >= 0) {
    struct stat st{};
    if (::fstat(fd_, &st) == 0) offset_ = static_cast<std::uint64_t>(st.st_size);
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::injectTear(std::uint64_t atAppend, std::size_t keepBytes) {
  tearAtAppend_ = atAppend;
  tearKeepBytes_ = keepBytes;
}

bool WalWriter::writeAll(const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool WalWriter::append(std::span<const std::uint8_t> payload) {
  if (!ok()) return false;

  ByteWriter header;
  header.u16(kWalMagic);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> record = header.bytes();
  record.insert(record.end(), payload.begin(), payload.end());
  const std::uint32_t crc = phy::crc32(record);
  ByteWriter trailer;
  trailer.u32(crc);
  record.insert(record.end(), trailer.bytes().begin(), trailer.bytes().end());

  ++appends_;
  if (tearAtAppend_ != 0 && appends_ >= tearAtAppend_) {
    // Simulated process death mid-write: part of the record lands on
    // disk, the rest never will, and this writer is gone.
    std::size_t keep = tearKeepBytes_ != 0 ? tearKeepBytes_ : record.size() / 2;
    if (keep >= record.size()) keep = record.size() - 1;
    (void)writeAll(record.data(), keep);
    offset_ += keep;
    bytesWritten_ += keep;
    dead_ = true;
    return false;
  }

  if (!writeAll(record.data(), record.size())) {
    dead_ = true;
    return false;
  }
  offset_ += record.size();
  bytesWritten_ += record.size();

  bool needSync = policy_ == WalFsyncPolicy::kEveryAppend;
  if (policy_ == WalFsyncPolicy::kEveryN) {
    ++sinceFsync_;
    if (sinceFsync_ >= fsyncEveryN_) {
      needSync = true;
      sinceFsync_ = 0;
    }
  }
  if (needSync && !sync()) return false;
  return true;
}

bool WalWriter::sync() {
  if (!ok()) return false;
  if (::fsync(fd_) != 0) {
    dead_ = true;
    return false;
  }
  ++fsyncs_;
  return true;
}

WalReadResult parseWal(std::span<const std::uint8_t> bytes) {
  WalReadResult out;
  std::size_t cursor = 0;
  const std::size_t size = bytes.size();
  while (cursor < size) {
    // Anything that stops this record from parsing cleanly — short
    // header, bad magic, payload or CRC running off the end, CRC
    // mismatch — is the damage point: count it, salvage the prefix.
    if (size - cursor < kWalRecordOverheadBytes) break;
    const std::uint16_t magic =
        static_cast<std::uint16_t>(bytes[cursor] | (bytes[cursor + 1] << 8));
    if (magic != kWalMagic) break;
    const std::uint32_t len =
        static_cast<std::uint32_t>(bytes[cursor + 2]) |
        (static_cast<std::uint32_t>(bytes[cursor + 3]) << 8) |
        (static_cast<std::uint32_t>(bytes[cursor + 4]) << 16) |
        (static_cast<std::uint32_t>(bytes[cursor + 5]) << 24);
    if (size - cursor - kWalRecordOverheadBytes < len) break;
    const std::size_t bodyEnd = cursor + 6 + len;
    const std::uint32_t stored =
        static_cast<std::uint32_t>(bytes[bodyEnd]) |
        (static_cast<std::uint32_t>(bytes[bodyEnd + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[bodyEnd + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[bodyEnd + 3]) << 24);
    const std::uint32_t computed = phy::crc32(
        std::span<const std::uint8_t>(bytes.data() + cursor, 6 + len));
    if (stored != computed) break;
    out.payloads.emplace_back(bytes.begin() + static_cast<long>(cursor + 6),
                              bytes.begin() + static_cast<long>(bodyEnd));
    cursor = bodyEnd + 4;
  }
  out.intactBytes = cursor;
  if (cursor < size) {
    out.corruptRecords = 1;
    out.salvagedBytes = size - cursor;
  }
  return out;
}

WalReadResult readWalFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};  // no log yet: an empty backend, not an error
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return parseWal(bytes);
}

}  // namespace caraoke::net
