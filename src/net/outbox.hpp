// Store-and-forward uplink outbox: the reader-side half of the
// fault-tolerant uplink.
//
// The fire-and-forget path ("flush the batch, hope the modem got it")
// silently loses sightings whenever the LTE hop drops or corrupts one
// transmission. The outbox instead keeps every sealed batch until the
// backend acknowledges its sequence number, retransmitting with
// exponential backoff + jitter.
//
// Batch lifecycle:
//
//      add()            seal()               collectTransmissions()
//   [open batch] ---> [pending, seq=N] ---> [in flight, backoff armed]
//                          ^                        |
//                          |  backoff expires       | onAck(N)
//                          +------------------------+----> forgotten
//                          |
//                          +--> expired (attempt cap, if configured)
//                          +--> shed (byte budget exceeded)
//
// Degradation policy when the byte budget is exceeded (a long outage):
// shed CountReports from the *oldest* batches first — counts are periodic
// and recoverable from later samples, decoded identities and sightings
// are not — and only once every count is gone drop whole batches, oldest
// first. A batch whose messages were all shed still transmits as an empty
// envelope so the backend's per-reader sequence space stays dense.
//
// Sealed frames use the v3 traced envelope (net/framing): each message's
// trace context rides the wire and survives retransmits, and every
// OutboxTransmission lists the distinct trace ids aboard so the daemon
// can emit per-attempt span links.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "net/framing.hpp"
#include "obs/metrics.hpp"

namespace caraoke::net {

/// Retry/backoff/budget tuning.
struct OutboxConfig {
  std::uint32_t readerId = 0;
  /// Byte budget across all pending (unacked) frames; exceeding it
  /// triggers the shed policy. Sized for minutes of outage at typical
  /// report rates.
  std::size_t maxBufferedBytes = 64 * 1024;
  /// Transmission attempts per batch before it is abandoned; 0 = retry
  /// forever (the byte budget still bounds memory).
  std::size_t maxAttempts = 0;
  double initialBackoffSec = 2.0;
  double backoffMultiplier = 2.0;
  double maxBackoffSec = 30.0;
  /// Uniform +/- fraction applied to each backoff interval so a fleet of
  /// readers recovering from the same outage does not retry in lockstep.
  double jitterFraction = 0.1;
  /// Metric name prefix inside the registry handed to the constructor.
  std::string metricsPrefix = "outbox";
};

/// Ack wire format (little-endian, CRC-protected — acks cross the same
/// lossy channel):
///   [magic u16 = 0xCAAC] [readerId u32] [seq u32] [crc32 u32]
struct Ack {
  std::uint32_t readerId = 0;
  std::uint32_t seq = 0;
};

inline constexpr std::uint16_t kAckMagic = 0xCAAC;

std::vector<std::uint8_t> encodeAck(const Ack& ack);
caraoke::Result<Ack> decodeAck(const std::vector<std::uint8_t>& bytes);

/// One frame the outbox wants transmitted now.
struct OutboxTransmission {
  std::uint32_t seq = 0;
  std::size_t attempt = 0;  ///< 1 = first transmission, >1 = retry.
  std::vector<std::uint8_t> frame;
  /// Distinct non-zero trace ids aboard the frame (first-appearance
  /// order) — the span links the daemon emits one `daemon.link_attempt`
  /// event per, so a journey records every wire attempt it rode.
  std::vector<std::uint64_t> traceIds;
};

/// The store-and-forward queue. All timing is caller-provided simulated
/// time; all randomness (jitter) comes from the injected Rng.
///
/// Thread-safe: every member serializes on an internal mutex, so a
/// producer thread can add()/seal() while a modem thread collects
/// transmissions and an ack-ingestion thread feeds onAckFrame(). Note
/// that multi-call sequences (e.g. "add then seal exactly my message")
/// are not atomic as a unit — interleave-sensitive callers hold their
/// own coarser lock.
class Outbox {
 public:
  /// Metrics land in `registry` (nullptr -> obs::globalRegistry()) under
  /// config.metricsPrefix.
  Outbox(OutboxConfig config, Rng rng, obs::Registry* registry = nullptr);

  /// Append a message to the open (not yet sealed) batch.
  void add(const Message& message);

  /// Messages in the open batch.
  std::size_t openMessages() const;

  /// Freeze the open batch into the pending queue, assigning the next
  /// sequence number. Returns false (and does nothing) when the open
  /// batch is empty. Applies the shed policy if the byte budget is now
  /// exceeded.
  bool seal(double now);

  /// Every pending frame whose (re)transmission timer has expired at
  /// `now`. Arms the next backoff interval per returned batch and drops
  /// batches that just used their final attempt.
  std::vector<OutboxTransmission> collectTransmissions(double now);

  /// Feed a received ack frame; returns true when it acked a pending
  /// batch of ours.
  bool onAckFrame(const std::vector<std::uint8_t>& frame, double now);

  /// Ack by sequence number. Any structurally valid ack for this reader
  /// resets the consecutive-failure watchdog (the link is evidently
  /// alive) even when the seq was already forgotten (duplicate ack).
  bool onAck(std::uint32_t seq, double now);

  std::size_t pendingBatches() const;
  /// Bytes across all pending frames (the quantity the budget bounds).
  std::size_t bufferedBytes() const;
  /// Retransmissions issued since the last ack arrived — the daemon's
  /// uplink-health watchdog input.
  std::size_t consecutiveFailures() const;
  /// Sequence number the next sealed batch will get.
  std::uint32_t nextSeq() const;
  /// Earliest pending transmission time, +inf when nothing is pending.
  double nextAttemptTime() const;

 private:
  struct PendingBatch {
    std::uint32_t seq = 0;
    std::vector<Message> messages;
    std::vector<std::uint8_t> frame;
    std::size_t attempts = 0;
    double nextAttemptSec = 0.0;
    double backoffSec = 0.0;
  };

  // Mutators that assume mutex_ is already held by the caller.
  void rebuildFrame(PendingBatch& batch) CARAOKE_REQUIRES(mutex_);
  void enforceBudget() CARAOKE_REQUIRES(mutex_);
  void updateGauge() CARAOKE_REQUIRES(mutex_);
  bool onAckLocked(std::uint32_t seq, double now) CARAOKE_REQUIRES(mutex_);

  /// Guards every mutable field below; all public members lock it on
  /// entry. config_ is immutable after construction and deliberately
  /// unguarded (onAckFrame reads readerId before taking the lock).
  /// Lock order: Outbox acquires nothing while mutex_ is held — see
  /// DESIGN.md §10.
  mutable std::mutex mutex_;
  OutboxConfig config_;
  Rng rng_ CARAOKE_GUARDED_BY(mutex_);
  std::vector<Message> open_ CARAOKE_GUARDED_BY(mutex_);
  std::deque<PendingBatch> pending_ CARAOKE_GUARDED_BY(mutex_);
  std::size_t bufferedBytes_ CARAOKE_GUARDED_BY(mutex_) = 0;
  std::uint32_t nextSeq_ CARAOKE_GUARDED_BY(mutex_) = 1;
  std::size_t consecutiveFailures_ CARAOKE_GUARDED_BY(mutex_) = 0;

  // Metric handles resolved once at construction; Counter/Gauge are
  // internally atomic (see obs/metrics.hpp), so no guard is needed.

  obs::Counter& sealedCtr_;
  obs::Counter& transmissionsCtr_;
  obs::Counter& retriesCtr_;
  obs::Counter& ackedCtr_;
  obs::Counter& shedCountsCtr_;
  obs::Counter& shedBatchesCtr_;
  obs::Counter& expiredCtr_;
  obs::Gauge& pendingBytesGauge_;
  obs::Gauge& pendingBatchesGauge_;
};

}  // namespace caraoke::net
