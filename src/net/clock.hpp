// Reader clock model and NTP-style synchronization (paper §6/§7).
//
// Readers are synchronized over the Internet (LTE + NTP) to within tens of
// milliseconds. That residual error is the dominant term in the speed
// estimate's delay measurement, so it is modeled explicitly: each reader's
// clock has an offset and a drift rate; a sync event re-centers the offset
// with a residual Gaussian error.
#pragma once

#include "common/rng.hpp"

namespace caraoke::net {

/// One reader's local clock.
class ReaderClock {
 public:
  /// offsetSec: initial offset from true time; driftPpm: rate error in
  /// parts-per-million (positive = runs fast).
  ReaderClock(double offsetSec = 0.0, double driftPpm = 0.0)
      : offsetSec_(offsetSec), driftPpm_(driftPpm) {}

  /// Local timestamp for a true time.
  double localTime(double trueTime) const {
    return trueTime + offsetSec_ + driftPpm_ * 1e-6 * (trueTime - lastSync_);
  }

  /// Perform an NTP sync at true time t: the offset collapses to a
  /// residual error with the given RMS (tens of ms over LTE, §7).
  void ntpSync(double trueTime, double residualRmsSec, Rng& rng);

  double offsetSec() const { return offsetSec_; }

 private:
  double offsetSec_;
  double driftPpm_;
  double lastSync_ = 0.0;
};

/// Default NTP-over-LTE residual error, RMS seconds ("tens of ms").
inline constexpr double kNtpResidualRmsSec = 0.020;

}  // namespace caraoke::net
