// Minimal HTTP/1.0 GET client: the fleet collector's ingest path.
// Pulls /metrics and /healthz off each reader daemon's obs::ExpoServer
// over loopback (or the backhaul, in a real deployment) with the same
// no-dependency POSIX-socket discipline the server uses.
//
// Two entry points share one non-blocking engine:
//
//   httpGet()   one blocking GET — convenience wrapper over a
//               single-request ScrapeSet.
//   ScrapeSet   N GETs in flight at once under ONE deadline: add() the
//               targets, run() drives every connection through a
//               connect -> send -> receive state machine off a single
//               poll() loop. A 100-reader sweep costs one slow-target
//               RTT instead of the sum of all of them; a dead reader
//               burns its slot, not the round.
//
// Scope is deliberately tiny — exactly what a scraper needs: one
// request per connection (`Connection: close` framing), one shared
// deadline so one dead reader cannot stall a fleet scrape round, a
// response-body byte cap so one misbehaving reader cannot balloon the
// monitor's memory, status + Content-Type + body parsed out, everything
// else ignored. Not a general HTTP client and not trying to be.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace caraoke::net {

/// Default response-body cap (8 MiB): far above any real exposition
/// dump, low enough that a runaway peer cannot exhaust the monitor.
inline constexpr std::size_t kDefaultMaxBodyBytes = 8u << 20;

/// Result of one GET. `ok` means transport succeeded AND the status was
/// parseable — a 503 reply still has ok == true (the caller reads
/// `status`); connection refused / timeout / oversized body / garbage
/// set ok == false and put the reason in `error`.
struct HttpResponse {
  bool ok = false;
  int status = 0;
  std::string contentType;
  std::string body;
  std::string error;
};

/// One target for a ScrapeSet round. `host` must be a dotted-quad IPv4
/// literal — readers are addressed by IP in the fleet table; no
/// resolver needed or wanted here.
struct ScrapeRequest {
  std::string host;
  std::uint16_t port = 0;
  std::string target = "/metrics";
};

/// Fire N GETs concurrently and poll them to completion under one
/// shared deadline. Reusable: run() consumes the added requests and
/// leaves the set empty for the next round.
class ScrapeSet {
 public:
  explicit ScrapeSet(std::size_t maxBodyBytes = kDefaultMaxBodyBytes)
      : maxBodyBytes_(maxBodyBytes) {}

  /// Queue one target; returns its index into run()'s result vector.
  std::size_t add(ScrapeRequest request) {
    requests_.push_back(std::move(request));
    return requests_.size() - 1;
  }

  std::size_t pending() const { return requests_.size(); }

  /// Drive every queued request to completion (or failure) within
  /// `deadlineMs` TOTAL — the deadline covers the whole round, not each
  /// target. Returns responses index-aligned with add() order; targets
  /// still in flight at the deadline fail with a deadline error.
  std::vector<HttpResponse> run(int deadlineMs);

 private:
  std::size_t maxBodyBytes_;
  std::vector<ScrapeRequest> requests_;
};

/// Blocking GET http://<host>:<port><target>: a one-request ScrapeSet.
/// `timeoutMs` bounds the whole request (connect + send + receive);
/// a response body larger than `maxBodyBytes` is rejected (ok == false).
HttpResponse httpGet(const std::string& host, std::uint16_t port,
                     const std::string& target, int timeoutMs = 2000,
                     std::size_t maxBodyBytes = kDefaultMaxBodyBytes);

}  // namespace caraoke::net
