// Minimal blocking HTTP/1.0 GET client: the fleet collector's ingest
// path. Pulls /metrics and /healthz off each reader daemon's
// obs::ExpoServer over loopback (or the backhaul, in a real deployment)
// with the same no-dependency POSIX-socket discipline the server uses.
//
// Scope is deliberately tiny — exactly what a scraper needs: one
// request per connection (`Connection: close` framing), bounded
// connect/recv/send timeouts so one dead reader cannot stall a fleet
// scrape round, status + Content-Type + body parsed out, everything
// else ignored. Not a general HTTP client and not trying to be.
#pragma once

#include <cstdint>
#include <string>

namespace caraoke::net {

/// Result of one GET. `ok` means transport succeeded AND the status was
/// parseable — a 503 reply still has ok == true (the caller reads
/// `status`); connection refused / timeout / garbage set ok == false
/// and put the reason in `error`.
struct HttpResponse {
  bool ok = false;
  int status = 0;
  std::string contentType;
  std::string body;
  std::string error;
};

/// Blocking GET http://<host>:<port><target> with per-phase timeouts
/// (connect, then SO_RCVTIMEO/SO_SNDTIMEO on the socket). `host` must
/// be a dotted-quad IPv4 literal — readers are addressed by IP in the
/// fleet table; no resolver needed or wanted here.
HttpResponse httpGet(const std::string& host, std::uint16_t port,
                     const std::string& target, int timeoutMs = 2000);

}  // namespace caraoke::net
