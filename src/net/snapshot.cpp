#include "net/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "phy/crc.hpp"

namespace caraoke::net {

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".snap";

// Report entry: [len u16][traceId u64][spanId u64][encodeMessage bytes],
// the same shape a v3 batch envelope gives each message.
void appendReportEntry(std::vector<std::uint8_t>& out, const Message& message) {
  const obs::TraceContext trace = messageTrace(message);
  ByteWriter prefix;
  const std::vector<std::uint8_t> inner = encodeMessage(message);
  prefix.u16(static_cast<std::uint16_t>(16 + inner.size()));
  prefix.u64(trace.traceId);
  prefix.u64(trace.spanId);
  out.insert(out.end(), prefix.bytes().begin(), prefix.bytes().end());
  out.insert(out.end(), inner.begin(), inner.end());
}

// Bounds-checked cursor reads over the snapshot image.
struct Cursor {
  std::span<const std::uint8_t> bytes;
  std::size_t at = 0;

  bool take(std::size_t n, const std::uint8_t** out) {
    if (bytes.size() - at < n) return false;
    *out = bytes.data() + at;
    at += n;
    return true;
  }
  bool u16(std::uint16_t& v) {
    const std::uint8_t* p;
    if (!take(2, &p)) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    const std::uint8_t* p;
    if (!take(4, &p)) return false;
    v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return true;
  }
  bool u64(std::uint64_t& v) {
    const std::uint8_t* p;
    if (!take(8, &p)) return false;
    v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return true;
  }
  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }
};

bool readReportEntry(Cursor& c, Message& out) {
  std::uint16_t len = 0;
  if (!c.u16(len) || len < 16) return false;
  obs::TraceContext trace;
  if (!c.u64(trace.traceId) || !c.u64(trace.spanId)) return false;
  const std::uint8_t* p;
  if (!c.take(len - 16u, &p)) return false;
  auto decoded =
      decodeMessage(std::vector<std::uint8_t>(p, p + (len - 16u)));
  if (!decoded.ok()) return false;
  out = decoded.value();
  setMessageTrace(out, trace);
  return true;
}

bool fsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}


/// Parse `snapshot-<seq>.snap`; false for anything else (tmp files,
/// the WAL, strangers).
bool parseSnapshotName(const std::string& name, std::uint64_t& seq) {
  const std::string prefix = kSnapshotPrefix;
  const std::string suffix = kSnapshotSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  seq = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char ch = name[i];
    if (ch < '0' || ch > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

std::vector<std::pair<std::uint64_t, std::string>> listSnapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::uint64_t seq = 0;
    if (parseSnapshotName(entry.path().filename().string(), seq))
      out.emplace_back(seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string snapshotFileName(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%010llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(seq), kSnapshotSuffix);
  return buf;
}

std::vector<std::uint8_t> encodeSnapshot(const BackendSnapshot& snapshot) {
  ByteWriter header;
  header.u16(kSnapshotMagic);
  header.u16(kSnapshotVersion);
  header.u64(snapshot.walOffset);
  std::vector<std::uint8_t> out = header.bytes();

  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(snapshot.seq.size()));
    for (const ReaderSeqRecord& r : snapshot.seq) {
      w.u32(r.readerId);
      w.u32(r.maxSeq);
      w.u32(static_cast<std::uint32_t>(r.seen.size()));
      for (const std::uint32_t s : r.seen) w.u32(s);
    }
    out.insert(out.end(), w.bytes().begin(), w.bytes().end());
  }

  auto appendSection = [&out](auto const& reports) {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(reports.size()));
    out.insert(out.end(), w.bytes().begin(), w.bytes().end());
    for (const auto& report : reports) appendReportEntry(out, Message{report});
  };
  appendSection(snapshot.sightings);
  appendSection(snapshot.counts);
  appendSection(snapshot.decodes);

  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(snapshot.speedSamples.size()));
    for (const SpeedSampleRecord& s : snapshot.speedSamples) {
      w.u32(s.readerId);
      w.f64(s.timestamp);
      w.f64(s.cfoHz);
      w.f64(s.cosAlpha);
      w.u64(s.traceId);
    }
    out.insert(out.end(), w.bytes().begin(), w.bytes().end());
  }

  const std::uint32_t crc = phy::crc32(out);
  ByteWriter trailer;
  trailer.u32(crc);
  out.insert(out.end(), trailer.bytes().begin(), trailer.bytes().end());
  return out;
}

caraoke::Result<BackendSnapshot> decodeSnapshot(
    std::span<const std::uint8_t> bytes) {
  using R = caraoke::Result<BackendSnapshot>;
  if (bytes.size() < 16) return R::failure("truncated snapshot");
  const std::uint32_t stored =
      static_cast<std::uint32_t>(bytes[bytes.size() - 4]) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 1]) << 24);
  const std::uint32_t computed = phy::crc32(
      std::span<const std::uint8_t>(bytes.data(), bytes.size() - 4));
  if (stored != computed) return R::failure("snapshot crc mismatch");

  Cursor c{bytes.first(bytes.size() - 4)};
  std::uint16_t magic = 0;
  std::uint16_t version = 0;
  BackendSnapshot out;
  if (!c.u16(magic) || magic != kSnapshotMagic)
    return R::failure("bad snapshot magic");
  if (!c.u16(version) || version != kSnapshotVersion)
    return R::failure("unsupported snapshot version");
  if (!c.u64(out.walOffset)) return R::failure("truncated snapshot header");

  std::uint32_t readers = 0;
  if (!c.u32(readers)) return R::failure("truncated snapshot seq section");
  for (std::uint32_t i = 0; i < readers; ++i) {
    ReaderSeqRecord r;
    std::uint32_t n = 0;
    if (!c.u32(r.readerId) || !c.u32(r.maxSeq) || !c.u32(n))
      return R::failure("truncated snapshot seq record");
    r.seen.reserve(n);
    for (std::uint32_t j = 0; j < n; ++j) {
      std::uint32_t s = 0;
      if (!c.u32(s)) return R::failure("truncated snapshot seq record");
      r.seen.push_back(s);
    }
    out.seq.push_back(std::move(r));
  }

  auto readSection = [&c](auto& reports, const char** error) {
    using ReportT = typename std::decay_t<decltype(reports)>::value_type;
    std::uint32_t n = 0;
    if (!c.u32(n)) {
      *error = "truncated snapshot section";
      return false;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      Message m;
      if (!readReportEntry(c, m)) {
        *error = "bad snapshot report entry";
        return false;
      }
      const auto* report = std::get_if<ReportT>(&m);
      if (report == nullptr) {
        *error = "snapshot report entry of unexpected type";
        return false;
      }
      reports.push_back(*report);
    }
    return true;
  };
  const char* error = nullptr;
  if (!readSection(out.sightings, &error)) return R::failure(error);
  if (!readSection(out.counts, &error)) return R::failure(error);
  if (!readSection(out.decodes, &error)) return R::failure(error);

  std::uint32_t samples = 0;
  if (!c.u32(samples)) return R::failure("truncated snapshot speed section");
  for (std::uint32_t i = 0; i < samples; ++i) {
    SpeedSampleRecord s;
    if (!c.u32(s.readerId) || !c.f64(s.timestamp) || !c.f64(s.cfoHz) ||
        !c.f64(s.cosAlpha) || !c.u64(s.traceId))
      return R::failure("truncated snapshot speed sample");
    out.speedSamples.push_back(s);
  }
  if (c.at != c.bytes.size()) return R::failure("trailing bytes in snapshot");
  return out;
}

bool writeSnapshotFile(const std::string& dir, std::uint64_t seq,
                       std::span<const std::uint8_t> bytes) {
  const std::string finalPath = dir + "/" + snapshotFileName(seq);
  const std::string tmpPath = finalPath + ".tmp";
  {
    const int fd =
        ::open(tmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n = ::write(fd, bytes.data() + written,
                                bytes.size() - written);
      if (n < 0) {
        ::close(fd);
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) return false;
  }
  if (std::rename(tmpPath.c_str(), finalPath.c_str()) != 0) return false;
  // Publish the rename: fsync the directory so the new name survives a
  // power cut (best-effort — some filesystems refuse O_RDONLY dir fds).
  (void)fsyncPath(dir);
  return true;
}

LoadedSnapshot loadNewestSnapshot(const std::string& dir,
                                  std::size_t* rejected) {
  if (rejected != nullptr) *rejected = 0;
  auto candidates = listSnapshots(dir);
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    std::ifstream in(it->second, std::ios::binary);
    if (!in) {
      if (rejected != nullptr) ++*rejected;
      continue;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    auto decoded = decodeSnapshot(bytes);
    if (!decoded.ok()) {
      if (rejected != nullptr) ++*rejected;
      continue;
    }
    return {it->first, std::move(decoded.value())};
  }
  return {};
}

std::uint64_t newestSnapshotSeq(const std::string& dir) {
  auto candidates = listSnapshots(dir);
  return candidates.empty() ? 0 : candidates.back().first;
}

}  // namespace caraoke::net
