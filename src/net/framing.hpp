// Uplink batching (paper footnote 15): the reader conveys only a few
// kbits per query and keeps the LTE modem asleep most of the time by
// batching many messages into one transmission burst.
//
// Batch wire formats (little-endian):
//   v1 (magic 0xCA0C):
//     [magic u16] [count u16] { [len u16] [message bytes] } x count
//   v2 (magic 0xCA0D):
//     [magic u16] [readerId u32] [seq u32] [count u16]
//     { [len u16] [message bytes] } x count [crc32 u32]
//   v3 (magic 0xCA0E):
//     [magic u16] [readerId u32] [seq u32] [count u16]
//     { [len u16] [traceId u64] [spanId u64] [message bytes] } x count
//     [crc32 u32]
//
// v2 adds the store-and-forward envelope (reader id + per-batch sequence
// number, so the backend can ack, dedup retransmissions, and account for
// gaps) and a CRC-32 trailer over everything before it, so bit corruption
// on the lossy uplink is *detected* rather than discovered by parse luck.
// v3 prefixes every entry with the originating trace context (16 bytes,
// covered by `len` and the CRC) so backend spans can join the reader's
// trace; the inner message payload is unchanged from v1/v2. Decoders
// accept all three versions; v1/v2 remain for pre-envelope / pre-trace
// peers, whose messages simply decode with traceId 0.
#pragma once

#include <vector>

#include "net/message.hpp"

namespace caraoke::net {

/// v2 envelope header: who sent the batch and where it sits in that
/// reader's sequence space (seq starts at 1 and increments per batch).
struct BatchHeader {
  std::uint32_t readerId = 0;
  std::uint32_t seq = 0;
};

/// Accumulates messages and emits them as one framed batch.
class FrameBatcher {
 public:
  /// Queue one message for the next flush.
  void add(const Message& message);

  /// Messages currently queued.
  std::size_t pending() const { return encoded_.size(); }

  /// Bytes the next legacy flush() would transmit (including batch
  /// header). Add kEnvelopeOverheadBytes for the v2 flush(header) form.
  std::size_t byteSize() const;

  /// Serialize everything queued as a legacy v1 frame and clear the
  /// queue. An empty queue yields an empty vector (nothing to send), not
  /// a header-only batch.
  std::vector<std::uint8_t> flush();

  /// Serialize everything queued as a v2 envelope frame (header +
  /// CRC-32 trailer) and clear the queue. Empty queue -> empty vector.
  std::vector<std::uint8_t> flush(const BatchHeader& header);

  /// The legacy batch magic number.
  static constexpr std::uint16_t kMagic = 0xCA0C;
  /// The envelope (v2) batch magic number.
  static constexpr std::uint16_t kMagicV2 = 0xCA0D;
  /// The traced-envelope (v3) batch magic number.
  static constexpr std::uint16_t kMagicV3 = 0xCA0E;
  /// Extra bytes a v2 frame carries over v1: readerId + seq + crc32.
  static constexpr std::size_t kEnvelopeOverheadBytes = 12;
  /// Extra bytes each v3 entry carries over v2: traceId + spanId.
  static constexpr std::size_t kTracePrefixBytes = 16;

 private:
  std::vector<std::vector<std::uint8_t>> encoded_;
};

/// Encode a v2 envelope frame directly from messages. Unlike
/// FrameBatcher::flush, an empty message list is legal and yields a
/// count=0 frame — the store-and-forward outbox uses this to keep a
/// reader's sequence space dense when shedding empties a batch.
std::vector<std::uint8_t> encodeBatchV2(const BatchHeader& header,
                                        const std::vector<Message>& messages);

/// Encode a v3 traced-envelope frame: like encodeBatchV2 (empty list is
/// legal), plus each entry carries the message's traceId/spanId fields
/// in a 16-byte prefix covered by the entry length and the CRC trailer.
std::vector<std::uint8_t> encodeBatchV3(const BatchHeader& header,
                                        const std::vector<Message>& messages);

/// How decodeBatch treats a batch whose envelope parsed but whose inner
/// messages are damaged.
enum class BatchDecodePolicy {
  /// Skip undecodable inner messages, return the siblings that parsed
  /// plus a count of what was lost (the production posture: one corrupt
  /// message must not destroy the rest of the batch).
  kSalvage,
  /// Any inner damage fails the whole batch (the pre-robustness
  /// behaviour, kept for tests that want to assert it).
  kStrict,
};

/// What decodeBatch recovered.
struct DecodedBatch {
  std::vector<Message> messages;
  /// Inner messages (or trailing fragments) that could not be decoded
  /// and were skipped. Always 0 in strict mode (damage fails instead).
  std::size_t droppedMessages = 0;
  /// True for v2 frames; header then carries readerId/seq.
  bool hasHeader = false;
  BatchHeader header{};
};

/// Parse a batch (either wire version) back into messages. Fails on bad
/// magic, a truncated header, or a CRC-32 mismatch (v2); inner-message
/// damage is salvaged or fatal per the policy.
caraoke::Result<DecodedBatch> decodeBatch(
    const std::vector<std::uint8_t>& bytes,
    BatchDecodePolicy policy = BatchDecodePolicy::kSalvage);

/// Modem air-time estimate for a batch at a given uplink rate [bit/s] —
/// the quantity the §12.5 footnote's duty-cycling argument depends on.
double batchAirTimeSec(std::size_t batchBytes, double uplinkBitsPerSec);

}  // namespace caraoke::net
