// Uplink batching (paper footnote 15): the reader conveys only a few
// kbits per query and keeps the LTE modem asleep most of the time by
// batching many messages into one transmission burst.
//
// Batch wire format (little-endian):
//   [magic u16 = 0xCA0C] [count u16] { [len u16] [message bytes] } x count
#pragma once

#include <vector>

#include "net/message.hpp"

namespace caraoke::net {

/// Accumulates messages and emits them as one framed batch.
class FrameBatcher {
 public:
  /// Queue one message for the next flush.
  void add(const Message& message);

  /// Messages currently queued.
  std::size_t pending() const { return encoded_.size(); }

  /// Bytes the next flush would transmit (including batch header).
  std::size_t byteSize() const;

  /// Serialize everything queued and clear the queue.
  std::vector<std::uint8_t> flush();

  /// The batch magic number.
  static constexpr std::uint16_t kMagic = 0xCA0C;

 private:
  std::vector<std::vector<std::uint8_t>> encoded_;
};

/// Parse a batch back into messages. Fails on bad magic, truncation, or
/// any undecodable inner message.
caraoke::Result<std::vector<Message>> decodeBatch(
    const std::vector<std::uint8_t>& bytes);

/// Modem air-time estimate for a batch at a given uplink rate [bit/s] —
/// the quantity the §12.5 footnote's duty-cycling argument depends on.
double batchAirTimeSec(std::size_t batchBytes, double uplinkBitsPerSec);

}  // namespace caraoke::net
