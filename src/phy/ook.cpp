#include "phy/ook.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "obs/prof.hpp"
#include "obs/prof_stages.hpp"

namespace caraoke::phy {

std::vector<double> chipsToBaseband(std::span<const std::uint8_t> chips,
                                    std::size_t samplesPerChip) {
  std::vector<double> s(chips.size() * samplesPerChip);
  for (std::size_t c = 0; c < chips.size(); ++c) {
    const double level = chips[c] ? 1.0 : 0.0;
    for (std::size_t k = 0; k < samplesPerChip; ++k)
      s[c * samplesPerChip + k] = level;
  }
  return s;
}

dsp::CVec modulateResponse(const BitVec& packetBits,
                           const SamplingParams& params, double cfoHz,
                           double initialPhase) {
  const BitVec chips = manchesterEncode(packetBits);
  const std::vector<double> s = chipsToBaseband(chips, params.samplesPerChip());
  dsp::CVec y(s.size());
  const double step = kTwoPi * cfoHz / params.sampleRateHz;
  for (std::size_t t = 0; t < s.size(); ++t) {
    const double angle = step * static_cast<double>(t) + initialPhase;
    y[t] = s[t] * dsp::cdouble(std::cos(angle), std::sin(angle));
  }
  return y;
}

namespace {

// Integrate the real part over each Manchester half-period of each bit.
void halfBitEnergies(dsp::CSpan waveform, const SamplingParams& params,
                     std::size_t numBits, std::vector<double>& first,
                     std::vector<double>& second) {
  const std::size_t spc = params.samplesPerChip();
  if (waveform.size() < numBits * 2 * spc)
    throw std::invalid_argument("demodulateOok: waveform too short");
  first.assign(numBits, 0.0);
  second.assign(numBits, 0.0);
  for (std::size_t b = 0; b < numBits; ++b) {
    const std::size_t base = b * 2 * spc;
    for (std::size_t k = 0; k < spc; ++k) {
      first[b] += waveform[base + k].real();
      second[b] += waveform[base + spc + k].real();
    }
  }
}

}  // namespace

BitVec demodulateOok(dsp::CSpan waveform, const SamplingParams& params,
                     std::size_t numBits) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kDemod);
  std::vector<double> first, second;
  halfBitEnergies(waveform, params, numBits, first, second);
  return manchesterDecodeSoft(first, second);
}

std::vector<double> ookBitMargins(dsp::CSpan waveform,
                                  const SamplingParams& params,
                                  std::size_t numBits) {
  std::vector<double> first, second;
  halfBitEnergies(waveform, params, numBits, first, second);
  std::vector<double> margins(numBits);
  for (std::size_t b = 0; b < numBits; ++b) {
    const double sum = std::abs(first[b]) + std::abs(second[b]);
    margins[b] = sum > 0 ? std::abs(first[b] - second[b]) / sum : 0.0;
  }
  return margins;
}

}  // namespace caraoke::phy
