// On-off-keying modulation and demodulation of the transponder response.
//
// The transponder transmits s(t) in {0,1}: carrier present for a "1" chip,
// silent for a "0" chip (paper §3, Eq. 1). At the reader the baseband is
// r(t) = h * s(t) * e^{j 2 pi df t} (Eq. 3). The demodulator here runs on
// the output of the decoder's coherent-combining stage, after CFO and
// channel compensation, where the signal is (approximately) N * s(t) plus
// residual interference.
#pragma once

#include <span>

#include "dsp/types.hpp"
#include "phy/manchester.hpp"
#include "phy/packet.hpp"
#include "phy/protocol.hpp"

namespace caraoke::phy {

/// Rectangular-pulse baseband s(t) in {0,1} from Manchester chips.
std::vector<double> chipsToBaseband(std::span<const std::uint8_t> chips,
                                    std::size_t samplesPerChip);

/// Full transponder response waveform at complex baseband relative to the
/// reader LO: Manchester-encode the packet bits, shape to samples, apply
/// the CFO rotation and an initial oscillator phase.
///   y[t] = s[t] * e^{j (2 pi cfoHz t / fs + initialPhase)}
dsp::CVec modulateResponse(const BitVec& packetBits,
                           const SamplingParams& params, double cfoHz,
                           double initialPhase);

/// Demodulate an averaged, CFO/channel-compensated waveform back to bits.
/// Takes the real part (the combined target signal is real up to residual
/// interference), integrates each Manchester half-period, and decides each
/// bit by comparing halves. `waveform` must hold at least
/// bits * samplesPerBit samples.
BitVec demodulateOok(dsp::CSpan waveform, const SamplingParams& params,
                     std::size_t numBits = Packet::kBits);

/// Per-bit soft decision margin (|first half - second half| energy
/// difference, normalized); a confidence signal used by tests and by the
/// decoder's early-exit heuristic.
std::vector<double> ookBitMargins(dsp::CSpan waveform,
                                  const SamplingParams& params,
                                  std::size_t numBits = Packet::kBits);

}  // namespace caraoke::phy
