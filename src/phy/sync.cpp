#include "phy/sync.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dsp/stats.hpp"
#include "phy/manchester.hpp"
#include "phy/ook.hpp"

namespace caraoke::phy {

std::optional<std::size_t> detectEnergyEdge(dsp::CSpan samples,
                                            std::size_t noiseWindow,
                                            double thresholdFactor) {
  if (samples.size() <= noiseWindow) return std::nullopt;
  std::vector<double> lead(noiseWindow);
  for (std::size_t i = 0; i < noiseWindow; ++i)
    lead[i] = std::abs(samples[i]);
  const double floor = std::max(dsp::median(lead), 1e-12);
  const double threshold = thresholdFactor * floor;
  for (std::size_t i = noiseWindow; i < samples.size(); ++i)
    if (std::abs(samples[i]) > threshold) return i;
  return std::nullopt;
}

std::size_t syncWordScore(dsp::CSpan waveform, std::size_t sampleOffset,
                          const SamplingParams& params) {
  constexpr std::size_t kSyncBits = 16;
  const std::size_t needed =
      sampleOffset + kSyncBits * params.samplesPerBit();
  if (waveform.size() < needed) return 0;
  const BitVec bits = demodulateOok(waveform.subspan(sampleOffset),
                                    params, kSyncBits);
  std::size_t score = 0;
  for (std::size_t i = 0; i < kSyncBits; ++i) {
    const std::uint8_t expected =
        static_cast<std::uint8_t>((Packet::kSyncWord >> (15 - i)) & 1u);
    if (bits[i] == expected) ++score;
  }
  return score;
}

std::optional<std::size_t> findSyncOffset(dsp::CSpan waveform,
                                          std::size_t maxOffset,
                                          const SamplingParams& params,
                                          std::size_t minScore) {
  // Several offsets can decode all sync bits correctly (a 1-sample slip
  // only leaks one of four samples per half-bit), so ties are broken by
  // the soft decision margin, which peaks at exact alignment.
  constexpr std::size_t kSyncBits = 16;
  std::optional<std::size_t> best;
  double bestMetric = -1.0;
  for (std::size_t offset = 0; offset <= maxOffset; ++offset) {
    const std::size_t score = syncWordScore(waveform, offset, params);
    if (score < minScore) continue;
    const std::size_t needed =
        offset + kSyncBits * params.samplesPerBit();
    if (waveform.size() < needed) continue;
    const auto margins =
        ookBitMargins(waveform.subspan(offset), params, kSyncBits);
    double meanMargin = 0.0;
    for (double m : margins) meanMargin += m;
    meanMargin /= static_cast<double>(margins.size());
    const double metric = static_cast<double>(score) + meanMargin;
    if (metric > bestMetric) {
      bestMetric = metric;
      best = offset;
    }
  }
  return best;
}

}  // namespace caraoke::phy
