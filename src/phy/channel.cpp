#include "phy/channel.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace caraoke::phy {

double distance(const Vec3& a, const Vec3& b) { return length(b - a); }

double length(const Vec3& v) {
  return std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
}

double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

Vec3 direction(const Vec3& from, const Vec3& to) {
  const Vec3 d = to - from;
  const double len = length(d);
  if (len <= 0.0) return {0, 0, 0};
  return d * (1.0 / len);
}

dsp::cdouble rayGain(const Ray& ray, double wavelengthMeters) {
  if (ray.pathLengthMeters <= 0.0) return {0.0, 0.0};
  const double amplitude =
      ray.gainScale * wavelengthMeters / (4.0 * kPi * ray.pathLengthMeters);
  const double phase = -kTwoPi * ray.pathLengthMeters / wavelengthMeters;
  return amplitude * dsp::cdouble(std::cos(phase), std::sin(phase));
}

dsp::cdouble channelGain(const std::vector<Ray>& rays,
                         double wavelengthMeters) {
  dsp::cdouble h{};
  for (const Ray& r : rays) h += rayGain(r, wavelengthMeters);
  return h;
}

Ray losRay(const Vec3& a, const Vec3& b) { return {distance(a, b), 1.0}; }

Ray groundReflectionRay(const Vec3& a, const Vec3& b, double reflectionLoss) {
  // Image method: reflect b through the z = 0 plane.
  const Vec3 image{b.x, b.y, -b.z};
  return {distance(a, image), reflectionLoss};
}

Ray wallReflectionRay(const Vec3& a, const Vec3& b, double planeY,
                      double reflectionLoss) {
  const Vec3 image{b.x, 2.0 * planeY - b.y, b.z};
  return {distance(a, image), reflectionLoss};
}

void addAwgn(dsp::CVec& signal, double sigmaPerComponent, Rng& rng) {
  if (sigmaPerComponent <= 0.0) return;
  for (auto& x : signal)
    x += dsp::cdouble(rng.gaussian(0.0, sigmaPerComponent),
                      rng.gaussian(0.0, sigmaPerComponent));
}

void quantize(dsp::CVec& signal, double fullScale, int bits) {
  if (fullScale <= 0.0 || bits <= 1) return;
  const double levels = static_cast<double>(1u << (bits - 1));
  const double step = fullScale / levels;
  auto q = [&](double v) {
    const double clipped = std::clamp(v, -fullScale, fullScale);
    return std::round(clipped / step) * step;
  };
  for (auto& x : signal) x = dsp::cdouble(q(x.real()), q(x.imag()));
}

}  // namespace caraoke::phy
