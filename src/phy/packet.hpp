// The 256-bit transponder response packet.
//
// The paper (Fig 2b) specifies a 256-bit response with factory-fixed,
// agency-fixed, and programmable regions (one of them 47 bits) plus a CRC,
// but not the exact layout — that is proprietary to the toll operators.
// We define a concrete layout with the same ingredients (documented in
// DESIGN.md §5):
//
//   bits [  0,  16)  sync word 0xB5A3 (for packet detection)
//   bits [ 16,  80)  factory-fixed id, 64 bits
//   bits [ 80, 112)  agency-fixed id, 32 bits
//   bits [112, 159)  programmable field, 47 bits (paper's "47 bits")
//   bits [159, 176)  flags, 17 bits
//   bits [176, 240)  reserved, 64 bits
//   bits [240, 256)  CRC-16/CCITT-FALSE over bits [16, 240)
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"

namespace caraoke::phy {

/// Bit sequence type: one byte per bit, each 0 or 1. Chosen over a packed
/// representation because the decoder works with per-bit soft values.
using BitVec = std::vector<std::uint8_t>;

/// Decoded identity carried by a transponder response.
struct TransponderId {
  std::uint64_t factoryId = 0;   ///< 64-bit factory-fixed serial.
  std::uint32_t agencyId = 0;    ///< 32-bit issuing-agency id.
  std::uint64_t programmable = 0;///< 47-bit programmable field (driver account).
  std::uint32_t flags = 0;       ///< 17-bit flags region.

  bool operator==(const TransponderId&) const = default;
};

/// Builds, serializes, and validates transponder packets.
class Packet {
 public:
  /// Number of bits in a response.
  static constexpr std::size_t kBits = 256;

  /// Serialize an id into the 256-bit response (sync + fields + CRC).
  static BitVec encode(const TransponderId& id);

  /// Parse and validate 256 received bits. Fails if the length is wrong,
  /// the sync word does not match, or the CRC check fails.
  static caraoke::Result<TransponderId> decode(const BitVec& bits);

  /// True when the bit vector carries a valid sync word and CRC.
  static bool checksumOk(const BitVec& bits);

  /// A random but well-formed identity (deterministic given the Rng).
  static TransponderId randomId(Rng& rng);

  /// The 16-bit sync word.
  static constexpr std::uint16_t kSyncWord = 0xB5A3;
};

}  // namespace caraoke::phy
