// Packet timing recovery.
//
// The library's default model has every transponder answering exactly
// 100 us after the query (paper §3), so buffers are sample-aligned. Real
// tags have turn-around jitter of a few samples; these utilities recover
// the response start so the demodulator's bit boundaries line up.
//
// Two mechanisms:
//  - energy edge detection: the response begins where the envelope first
//    rises above a noise-derived threshold (works per collision, all
//    colliders share the trigger instant up to their individual jitter);
//  - sync-word search: the packet starts with a known 16-bit sync word;
//    trying a handful of sample offsets and scoring the demodulated sync
//    bits pins the exact offset (works on the decoder's combined
//    waveform, where only the target survives).
#pragma once

#include <cstddef>
#include <optional>

#include "dsp/types.hpp"
#include "phy/packet.hpp"
#include "phy/protocol.hpp"

namespace caraoke::phy {

/// First sample index where the magnitude envelope exceeds
/// `thresholdFactor` times the median magnitude of the leading
/// `noiseWindow` samples (assumed signal-free). nullopt when no edge.
std::optional<std::size_t> detectEnergyEdge(dsp::CSpan samples,
                                            std::size_t noiseWindow = 64,
                                            double thresholdFactor = 6.0);

/// Score how well the demodulated bits starting at `sampleOffset` match
/// the sync word: returns the number of matching sync bits (0..16).
std::size_t syncWordScore(dsp::CSpan waveform, std::size_t sampleOffset,
                          const SamplingParams& params);

/// Search offsets [0, maxOffset] for the best sync-word alignment.
/// Returns the offset with the highest score, or nullopt if no offset
/// matches at least `minScore` of the 16 sync bits.
std::optional<std::size_t> findSyncOffset(dsp::CSpan waveform,
                                          std::size_t maxOffset,
                                          const SamplingParams& params,
                                          std::size_t minScore = 14);

}  // namespace caraoke::phy
