// Wireless channel primitives: free-space (Friis) line-of-sight gain plus
// optional discrete multipath rays.
//
// The paper's deployment is pole-mounted and outdoor, so the channel is
// LoS-dominated (§12.2, Fig 14: strongest path ~27x the second one). We
// model the channel to each reader antenna as a sum of rays; the direct ray
// carries most of the energy, and reflectors (ground, facades) contribute
// weak delayed copies. Narrowband assumption: the signal bandwidth
// (~1 MHz) times the excess delays (tens of ns) is << 1, so each ray is a
// single complex coefficient, matching the paper's h in Eq. 2.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dsp/types.hpp"

namespace caraoke::phy {

/// A point in 3-D space [m]. x runs along the road, y across it, z up.
struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  bool operator==(const Vec3&) const = default;
};

/// Euclidean distance between two points.
double distance(const Vec3& a, const Vec3& b);

/// Vector length.
double length(const Vec3& v);

/// Dot product.
double dot(const Vec3& a, const Vec3& b);

/// Unit vector pointing from `from` to `to`.
Vec3 direction(const Vec3& from, const Vec3& to);

/// One propagation ray: everything needed to produce its complex gain.
struct Ray {
  double pathLengthMeters = 0.0; ///< Total traveled distance.
  double gainScale = 1.0;        ///< Extra amplitude factor (reflection loss).
};

/// Free-space complex gain of a single ray at the given wavelength:
///   h = gainScale * (lambda / (4 pi d)) * e^{-j 2 pi d / lambda}.
dsp::cdouble rayGain(const Ray& ray, double wavelengthMeters);

/// Channel as a sum of rays (direct ray first by convention).
dsp::cdouble channelGain(const std::vector<Ray>& rays,
                         double wavelengthMeters);

/// Direct LoS ray between two points.
Ray losRay(const Vec3& a, const Vec3& b);

/// Ground-bounce ray between two points over a flat reflecting plane at
/// z = 0 with the given reflection coefficient magnitude.
Ray groundReflectionRay(const Vec3& a, const Vec3& b,
                        double reflectionLoss = 0.3);

/// Single-bounce ray off a vertical reflector plane y = planeY (building
/// facade along the road).
Ray wallReflectionRay(const Vec3& a, const Vec3& b, double planeY,
                      double reflectionLoss = 0.2);

// --- Impairments ----------------------------------------------------------

/// Add circular complex Gaussian noise with the given per-component
/// standard deviation in place.
void addAwgn(dsp::CVec& signal, double sigmaPerComponent, Rng& rng);

/// 12-bit-style ADC: clip to [-fullScale, fullScale] and quantize both I
/// and Q to 2^bits uniform levels (paper §11: AD7356, 12-bit differential).
void quantize(dsp::CVec& signal, double fullScale, int bits);

}  // namespace caraoke::phy
