// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), the integrity check the
// decoder's accept loop runs after every combining round (paper §12.4:
// "the reader keeps combining collisions until the decoded id passes the
// checksum test").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace caraoke::phy {

/// CRC-16/CCITT-FALSE over bytes.
std::uint16_t crc16(std::span<const std::uint8_t> bytes);

/// CRC-16 over a bit sequence (each element 0 or 1, MSB-first packing;
/// the bit count need not be a byte multiple — remaining bits are packed
/// left-aligned in the final byte).
std::uint16_t crc16Bits(std::span<const std::uint8_t> bits);

/// CRC-32 (IEEE 802.3, reflected poly 0xEDB88320, init/xorout 0xFFFFFFFF)
/// over bytes. Used as the uplink batch-frame trailer so the lossy-link
/// model's bit corruption is detected instead of relying on parse luck.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace caraoke::phy
