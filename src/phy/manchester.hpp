// Manchester line coding (paper §3: "OOK Manchester modulation").
//
// Convention (IEEE 802.3): bit 1 -> chips {1, 0}, bit 0 -> chips {0, 1}.
// Every bit spends exactly half its period "on", which is what gives the
// transponder baseband s(t) its 0.5 mean — the DC component that turns into
// the CFO spike the whole paper builds on (Eq. 4-5).
#pragma once

#include <span>

#include "phy/packet.hpp"

namespace caraoke::phy {

/// Expand data bits to Manchester chips (2 chips per bit).
BitVec manchesterEncode(std::span<const std::uint8_t> bits);

/// Hard-decision chips back to bits. Chip pairs {1,0} -> 1, {0,1} -> 0;
/// an invalid pair ({0,0} or {1,1}) resolves to the first chip (a coding
/// violation a later CRC check will catch).
BitVec manchesterDecode(std::span<const std::uint8_t> chips);

/// Soft decision: for each bit, the decoder compares the energy of the
/// first half-period against the second. softFirst/softSecond hold those
/// per-bit energies; the result is 1 where first > second.
BitVec manchesterDecodeSoft(std::span<const double> softFirst,
                            std::span<const double> softSecond);

}  // namespace caraoke::phy
