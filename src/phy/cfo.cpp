#include "phy/cfo.hpp"

#include <algorithm>

namespace caraoke::phy {

double UniformCfoModel::drawCarrierHz(Rng& rng) const {
  return rng.uniform(kCarrierMinHz, kCarrierMaxHz);
}

EmpiricalCfoModel::EmpiricalCfoModel(double meanHz, double stddevHz)
    : meanHz_(meanHz), stddevHz_(stddevHz) {}

double EmpiricalCfoModel::drawCarrierHz(Rng& rng) const {
  return rng.truncatedGaussian(meanHz_, stddevHz_, kCarrierMinHz,
                               kCarrierMaxHz);
}

double CfoDriftModel::step(double carrierHz, Rng& rng) const {
  double next = carrierHz + rng.gaussian(0.0, rmsDriftHzPerQuery);
  // Reflect at band edges so a device near the edge stays legal.
  if (next < kCarrierMinHz) next = 2.0 * kCarrierMinHz - next;
  if (next > kCarrierMaxHz) next = 2.0 * kCarrierMaxHz - next;
  return std::clamp(next, kCarrierMinHz, kCarrierMaxHz);
}

std::vector<double> drawCarrierPopulation(const CfoModel& model,
                                          std::size_t count, Rng& rng) {
  std::vector<double> population(count);
  for (auto& c : population) c = model.drawCarrierHz(rng);
  return population;
}

}  // namespace caraoke::phy
