#include "phy/manchester.hpp"

#include <stdexcept>

#include "obs/prof.hpp"
#include "obs/prof_stages.hpp"

namespace caraoke::phy {

BitVec manchesterEncode(std::span<const std::uint8_t> bits) {
  BitVec chips(bits.size() * 2);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    chips[2 * i] = bits[i] ? 1 : 0;
    chips[2 * i + 1] = bits[i] ? 0 : 1;
  }
  return chips;
}

BitVec manchesterDecode(std::span<const std::uint8_t> chips) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kManchester);
  if (chips.size() % 2 != 0)
    throw std::invalid_argument("manchesterDecode: odd chip count");
  BitVec bits(chips.size() / 2);
  for (std::size_t i = 0; i < bits.size(); ++i)
    bits[i] = chips[2 * i] ? 1 : 0;
  return bits;
}

BitVec manchesterDecodeSoft(std::span<const double> softFirst,
                            std::span<const double> softSecond) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kManchester);
  if (softFirst.size() != softSecond.size())
    throw std::invalid_argument("manchesterDecodeSoft: length mismatch");
  BitVec bits(softFirst.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    bits[i] = softFirst[i] > softSecond[i] ? 1 : 0;
  return bits;
}

}  // namespace caraoke::phy
