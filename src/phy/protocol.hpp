// Protocol constants for the e-toll transponder air interface (paper §3,
// Fig 2) and the sampling parameters of the Caraoke reader front-end.
#pragma once

#include <cstddef>

#include "common/units.hpp"

namespace caraoke::phy {

// --- Air-interface timing (Fig 2a) ---------------------------------------

/// Reader query: an unmodulated sine at the carrier, 20 us long.
inline constexpr double kQueryDuration = usec(20.0);
/// Gap between the end of the query and the start of the response.
inline constexpr double kQueryResponseGap = usec(100.0);
/// Transponder response duration: 256 bits in 512 us.
inline constexpr double kResponseDuration = usec(512.0);
/// Response payload length in bits (Fig 2b).
inline constexpr std::size_t kResponseBits = 256;
/// Bit period: 512 us / 256 bits = 2 us.
inline constexpr double kBitDuration = kResponseDuration / kResponseBits;
/// Interval between successive queries when decoding (§12.4: "queries are
/// separated by 1 ms").
inline constexpr double kQueryInterval = msec(1.0);
/// CSMA listen window before a reader may transmit (§9: query 20 us +
/// 100 us gap, so 120 us of silence guarantees no response is pending).
inline constexpr double kCsmaListenWindow = usec(120.0);

// --- Carrier band (§3, §5) ------------------------------------------------

/// Lowest transponder carrier frequency.
inline constexpr double kCarrierMinHz = MHz(914.3);
/// Highest transponder carrier frequency.
inline constexpr double kCarrierMaxHz = MHz(915.5);
/// Nominal carrier.
inline constexpr double kCarrierNominalHz = MHz(915.0);
/// CFO span the counter searches: 1.2 MHz.
inline constexpr double kCfoSpanHz = kCarrierMaxHz - kCarrierMinHz;
/// Empirical carrier statistics from the paper's 155-transponder capture
/// (§5 footnote 7).
inline constexpr double kEmpiricalCarrierMeanHz = MHz(914.84);
inline constexpr double kEmpiricalCarrierStddevHz = MHz(0.21);

/// Radio range of a Caraoke reader (§9 footnote: 100 feet).
inline constexpr double kReaderRangeMeters = feet(100.0);

// --- Reader sampling --------------------------------------------------------

/// Sampling and windowing parameters of a reader's digital front-end.
/// Defaults give the paper's numbers: a 512 us window at 4 MHz is 2048
/// samples, delta_f = 1.953 kHz, and the 1.2 MHz CFO span covers 615 bins.
struct SamplingParams {
  /// Complex baseband sample rate [Hz].
  double sampleRateHz = MHz(4.0);
  /// Local oscillator; at the bottom of the band so CFO is in [0, 1.2 MHz].
  double loFrequencyHz = kCarrierMinHz;

  /// Samples in one full response window.
  std::size_t responseSamples() const {
    return static_cast<std::size_t>(kResponseDuration * sampleRateHz + 0.5);
  }
  /// Samples per data bit (2 us).
  std::size_t samplesPerBit() const {
    return static_cast<std::size_t>(kBitDuration * sampleRateHz + 0.5);
  }
  /// Samples per Manchester half-bit (1 us).
  std::size_t samplesPerChip() const { return samplesPerBit() / 2; }
  /// FFT resolution of the full window [Hz] (Eq. 6).
  double fftResolutionHz() const {
    return 1.0 / kResponseDuration;
  }
  /// Number of FFT bins the CFO span occupies (the paper's N = 615).
  std::size_t cfoBins() const {
    return static_cast<std::size_t>(kCfoSpanHz / fftResolutionHz());
  }
};

}  // namespace caraoke::phy
