#include "phy/crc.hpp"

#include <array>

namespace caraoke::phy {

namespace {

// Table generated at static-init time for the 0x1021 polynomial.
std::array<std::uint16_t, 256> makeTable() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint16_t i = 0; i < 256; ++i) {
    std::uint16_t crc = static_cast<std::uint16_t>(i << 8);
    for (int bit = 0; bit < 8; ++bit)
      crc = static_cast<std::uint16_t>((crc & 0x8000u) ? (crc << 1) ^ 0x1021u
                                                       : (crc << 1));
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint16_t, 256> kTable = makeTable();

std::array<std::uint32_t, 256> makeTable32() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : (crc >> 1);
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable32 = makeTable32();

}  // namespace

std::uint16_t crc16(std::span<const std::uint8_t> bytes) {
  std::uint16_t crc = 0xFFFFu;
  for (std::uint8_t b : bytes)
    crc = static_cast<std::uint16_t>((crc << 8) ^
                                     kTable[((crc >> 8) ^ b) & 0xFFu]);
  return crc;
}

std::uint16_t crc16Bits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  return crc16(bytes);
}

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) crc = (crc >> 8) ^ kTable32[(crc ^ b) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace caraoke::phy
