#include "phy/packet.hpp"

#include <span>

#include "phy/crc.hpp"

namespace caraoke::phy {

namespace {

// Write `count` bits of `value` MSB-first at `offset`.
void putBits(BitVec& bits, std::size_t offset, std::uint64_t value,
             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    bits[offset + i] =
        static_cast<std::uint8_t>((value >> (count - 1 - i)) & 1u);
}

// Read `count` bits MSB-first starting at `offset`.
std::uint64_t getBits(const BitVec& bits, std::size_t offset,
                      std::size_t count) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < count; ++i)
    v = (v << 1) | (bits[offset + i] & 1u);
  return v;
}

constexpr std::size_t kSyncOff = 0, kSyncLen = 16;
constexpr std::size_t kFactoryOff = 16, kFactoryLen = 64;
constexpr std::size_t kAgencyOff = 80, kAgencyLen = 32;
constexpr std::size_t kProgOff = 112, kProgLen = 47;
constexpr std::size_t kFlagsOff = 159, kFlagsLen = 17;
constexpr std::size_t kReservedOff = 176, kReservedLen = 64;
constexpr std::size_t kCrcOff = 240, kCrcLen = 16;
constexpr std::size_t kCrcCoverBegin = 16, kCrcCoverEnd = 240;

// splitmix64: cheap deterministic whitening for the reserved field. A long
// run of constant bits would Manchester-encode into a pure square wave and
// radiate strong extra spectral lines next to the CFO spike; real air
// protocols whiten their payload for exactly this reason.
std::uint64_t whiten(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BitVec Packet::encode(const TransponderId& id) {
  BitVec bits(kBits, 0);
  putBits(bits, kSyncOff, kSyncWord, kSyncLen);
  putBits(bits, kFactoryOff, id.factoryId, kFactoryLen);
  putBits(bits, kAgencyOff, id.agencyId, kAgencyLen);
  putBits(bits, kProgOff, id.programmable & ((1ull << kProgLen) - 1),
          kProgLen);
  putBits(bits, kFlagsOff, id.flags & ((1u << kFlagsLen) - 1), kFlagsLen);
  putBits(bits, kReservedOff,
          whiten(id.factoryId ^ (static_cast<std::uint64_t>(id.agencyId)
                                 << 17) ^ id.programmable),
          kReservedLen);
  const std::uint16_t crc = crc16Bits(
      std::span<const std::uint8_t>(bits.data() + kCrcCoverBegin,
                                    kCrcCoverEnd - kCrcCoverBegin));
  putBits(bits, kCrcOff, crc, kCrcLen);
  return bits;
}

bool Packet::checksumOk(const BitVec& bits) {
  if (bits.size() != kBits) return false;
  if (getBits(bits, kSyncOff, kSyncLen) != kSyncWord) return false;
  const std::uint16_t expected = crc16Bits(
      std::span<const std::uint8_t>(bits.data() + kCrcCoverBegin,
                                    kCrcCoverEnd - kCrcCoverBegin));
  return getBits(bits, kCrcOff, kCrcLen) == expected;
}

caraoke::Result<TransponderId> Packet::decode(const BitVec& bits) {
  using R = caraoke::Result<TransponderId>;
  if (bits.size() != kBits) return R::failure("wrong packet length");
  if (getBits(bits, kSyncOff, kSyncLen) != kSyncWord)
    return R::failure("sync word mismatch");
  if (!checksumOk(bits)) return R::failure("CRC check failed");
  TransponderId id;
  id.factoryId = getBits(bits, kFactoryOff, kFactoryLen);
  id.agencyId = static_cast<std::uint32_t>(getBits(bits, kAgencyOff,
                                                   kAgencyLen));
  id.programmable = getBits(bits, kProgOff, kProgLen);
  id.flags = static_cast<std::uint32_t>(getBits(bits, kFlagsOff, kFlagsLen));
  return id;
}

TransponderId Packet::randomId(Rng& rng) {
  TransponderId id;
  id.factoryId = rng.next();
  id.agencyId = static_cast<std::uint32_t>(rng.next());
  id.programmable = rng.next() & ((1ull << 47) - 1);
  id.flags = static_cast<std::uint32_t>(rng.next()) & ((1u << 17) - 1);
  return id;
}

}  // namespace caraoke::phy
