// Carrier-frequency-offset models.
//
// Each transponder has its own free-running oscillator somewhere in
// 914.3-915.5 MHz (§3). The paper analyzes counting under a uniform CFO
// assumption (Eq. 7/9) and validates against the empirical distribution of
// 155 real transponders, reported as Gaussian with mean 914.84 MHz and
// standard deviation 0.21 MHz (§5 fn. 7). Both models live here.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "phy/protocol.hpp"

namespace caraoke::phy {

/// Draws per-device carrier frequencies. Implementations must be cheap and
/// deterministic given the Rng stream.
class CfoModel {
 public:
  virtual ~CfoModel() = default;
  /// One device's carrier frequency [Hz], inside [kCarrierMinHz,
  /// kCarrierMaxHz].
  virtual double drawCarrierHz(Rng& rng) const = 0;
};

/// Uniform over the full 1.2 MHz band — the paper's analytical assumption.
class UniformCfoModel final : public CfoModel {
 public:
  double drawCarrierHz(Rng& rng) const override;
};

/// Truncated Gaussian matching the paper's measured population
/// (mean 914.84 MHz, stddev 0.21 MHz, truncated to the legal band).
class EmpiricalCfoModel final : public CfoModel {
 public:
  EmpiricalCfoModel(double meanHz = kEmpiricalCarrierMeanHz,
                    double stddevHz = kEmpiricalCarrierStddevHz);
  double drawCarrierHz(Rng& rng) const override;

 private:
  double meanHz_;
  double stddevHz_;
};

/// Short-term oscillator instability: the carrier drifts slightly between
/// successive queries (crystal jitter + temperature). The decoder must
/// re-estimate CFO per collision; this model injects the reason why.
struct CfoDriftModel {
  /// RMS drift between two queries 1 ms apart [Hz]. E-toll crystals are
  /// coarse (they span 1.2 MHz across devices) but short-term stable;
  /// tens of Hz per millisecond is a conservative stand-in.
  double rmsDriftHzPerQuery = 20.0;

  /// Next carrier value given the previous one (random walk, reflected
  /// at the band edges).
  double step(double carrierHz, Rng& rng) const;
};

/// A fixed population of carrier frequencies (the simulator's analogue of
/// the paper's 155-transponder capture).
std::vector<double> drawCarrierPopulation(const CfoModel& model,
                                          std::size_t count, Rng& rng);

}  // namespace caraoke::phy
