#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace caraoke {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(eng_);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(eng_);
}

double Rng::gaussian(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(eng_);
}

double Rng::truncatedGaussian(double mean, double stddev, double lo,
                              double hi) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = gaussian(mean, stddev);
    if (v >= lo && v <= hi) return v;
  }
  return std::clamp(mean, lo, hi);
}

double Rng::exponential(double rate) {
  std::exponential_distribution<double> d(rate);
  return d(eng_);
}

bool Rng::chance(double p) {
  std::bernoulli_distribution d(std::clamp(p, 0.0, 1.0));
  return d(eng_);
}

double Rng::phase() { return uniform(0.0, kTwoPi); }

std::vector<std::size_t> Rng::sampleWithoutReplacement(
    std::size_t populationSize, std::size_t n) {
  // Partial Fisher-Yates over an index vector: O(populationSize) setup,
  // fine for the population sizes we use (<= a few thousand transponders).
  std::vector<std::size_t> idx(populationSize);
  for (std::size_t i = 0; i < populationSize; ++i) idx[i] = i;
  for (std::size_t i = 0; i < n && i + 1 < populationSize; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        uniformInt(static_cast<std::int64_t>(i),
                   static_cast<std::int64_t>(populationSize - 1)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(std::min(n, populationSize));
  return idx;
}

Rng Rng::fork() { return Rng(eng_() ^ 0x9e37'79b9'7f4a'7c15ull); }

}  // namespace caraoke
