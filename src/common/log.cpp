#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace caraoke {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::cerr << "[caraoke " << levelTag(level) << "] " << message << '\n';
}

}  // namespace caraoke
