#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace caraoke {

namespace {
// Lock-free by design: the level gate is a single word read on every
// logging call; only line emission/sink swaps need logMutex().
std::atomic<LogLevel> g_level CARAOKE_LOCKFREE{LogLevel::kWarn};

// Serializes sink replacement and emission so concurrent loggers never
// interleave characters or race a sink swap.
std::mutex& logMutex() {
  static std::mutex m;
  return m;
}

LogSink& sinkStorage() {
  static LogSink sink;
  return sink;
}

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double secondsSinceStart() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void setLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(logMutex());
  sinkStorage() = std::move(sink);
}

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[caraoke %s +%.6fs] ",
                levelTag(level), secondsSinceStart());
  const std::string line = prefix + message;
  std::lock_guard<std::mutex> lock(logMutex());
  if (const LogSink& sink = sinkStorage()) {
    sink(level, line);
  } else {
    std::cerr << line << '\n';
  }
}

}  // namespace caraoke
