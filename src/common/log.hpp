// Minimal leveled logging.
//
// The library itself logs sparingly (benches and examples narrate their own
// output); logging exists mainly so long simulations can surface progress
// and so tests can silence everything.
//
// Thread-safe: the level is atomic and emission is serialized behind a
// mutex. Each line carries a monotonic timestamp (seconds since process
// start) and a level tag. Output goes through an injectable sink so tests
// can capture it; the default sink writes to stderr.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace caraoke {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users are not spammed.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Receives fully formatted lines ("[caraoke LEVEL +1.234567s] msg") plus
/// the level for filtering; called under the emission lock, one line per
/// call, no trailing newline.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replace the output sink (pass nullptr/empty to restore the stderr
/// default).
void setLogSink(LogSink sink);

/// Emit one line at the given level (no-op when below the threshold).
void logMessage(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(const Args&... args) {
  if (logLevel() <= LogLevel::kDebug)
    logMessage(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void logInfo(const Args&... args) {
  if (logLevel() <= LogLevel::kInfo)
    logMessage(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void logWarn(const Args&... args) {
  if (logLevel() <= LogLevel::kWarn)
    logMessage(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void logError(const Args&... args) {
  if (logLevel() <= LogLevel::kError)
    logMessage(LogLevel::kError, detail::concat(args...));
}

}  // namespace caraoke
