// Minimal leveled logging to stderr.
//
// The library itself logs sparingly (benches and examples narrate their own
// output); logging exists mainly so long simulations can surface progress
// and so tests can silence everything.
#pragma once

#include <sstream>
#include <string>

namespace caraoke {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users are not spammed.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one line at the given level (no-op when below the threshold).
void logMessage(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void logDebug(const Args&... args) {
  if (logLevel() <= LogLevel::kDebug)
    logMessage(LogLevel::kDebug, detail::concat(args...));
}
template <typename... Args>
void logInfo(const Args&... args) {
  if (logLevel() <= LogLevel::kInfo)
    logMessage(LogLevel::kInfo, detail::concat(args...));
}
template <typename... Args>
void logWarn(const Args&... args) {
  if (logLevel() <= LogLevel::kWarn)
    logMessage(LogLevel::kWarn, detail::concat(args...));
}
template <typename... Args>
void logError(const Args&... args) {
  if (logLevel() <= LogLevel::kError)
    logMessage(LogLevel::kError, detail::concat(args...));
}

}  // namespace caraoke
