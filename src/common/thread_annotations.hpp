#pragma once

/// Concurrency capability annotations.
///
/// Under clang these expand to the thread-safety-analysis attributes
/// so `-Wthread-safety` can prove lock discipline at compile time.
/// Under gcc they expand to nothing — but they are still load-bearing:
/// `tools/lockcheck.py` parses the macro names directly and enforces
/// the same discipline on every CI image, clang or not.
///
/// Conventions (see DESIGN.md §10 "Lock discipline"):
///  - Every `std::mutex` member must be named by at least one
///    CARAOKE_GUARDED_BY / CARAOKE_REQUIRES in its class
///    (caraoke_lint rule `mutexowner`).
///  - Every `std::atomic` member is either CARAOKE_GUARDED_BY(m) or
///    explicitly CARAOKE_LOCKFREE — intentional lock-freedom is
///    declared, never implied.
///  - `*Locked` helper methods carry CARAOKE_REQUIRES(mutex_).
///
/// libstdc++'s std::mutex is not declared `capability("mutex")`, so
/// clang emits -Wthread-safety-attributes noise for these annotations;
/// the `tsa` CI stage compiles with -Wno-thread-safety-attributes and
/// keeps the rest of -Wthread-safety as errors.

#if defined(__clang__)
#define CARAOKE_TSA_ATTR(x) __attribute__((x))
#else
#define CARAOKE_TSA_ATTR(x)
#endif

/// Declares that a type is a lock-like capability.
#define CARAOKE_CAPABILITY(x) CARAOKE_TSA_ATTR(capability(x))

/// Member is protected by the given mutex: every read/write must
/// happen while the mutex is held.
#define CARAOKE_GUARDED_BY(x) CARAOKE_TSA_ATTR(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define CARAOKE_PT_GUARDED_BY(x) CARAOKE_TSA_ATTR(pt_guarded_by(x))

/// Method may only be called while the given mutex is already held
/// (the repo's `*Locked` helper convention).
#define CARAOKE_REQUIRES(...) CARAOKE_TSA_ATTR(requires_capability(__VA_ARGS__))

/// Method acquires the given mutex and leaves it held on return.
#define CARAOKE_ACQUIRE(...) CARAOKE_TSA_ATTR(acquire_capability(__VA_ARGS__))

/// Method releases the given mutex.
#define CARAOKE_RELEASE(...) CARAOKE_TSA_ATTR(release_capability(__VA_ARGS__))

/// Method must NOT be called with the given mutex held (deadlock
/// guard for methods that acquire it themselves).
#define CARAOKE_EXCLUDES(...) CARAOKE_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// Opt a function out of clang's analysis. Use sparingly and pair
/// with a `// lockcheck: allow(...)` marker carrying the reason.
#define CARAOKE_NO_TSA CARAOKE_TSA_ATTR(no_thread_safety_analysis)

/// Marker (expands to nothing under every compiler): this atomic is
/// *intentionally* lock-free — concurrent access without a mutex is
/// by design, not an oversight. Read by tools/lockcheck.py, which
/// flags any std::atomic member that is neither guarded nor marked.
#define CARAOKE_LOCKFREE
