// Console table rendering for benchmark harnesses.
//
// Every bench binary regenerates one paper table/figure and prints it as an
// aligned text table ("paper" column next to "measured" column). This tiny
// formatter keeps that output consistent across benches.
#pragma once

#include <string>
#include <vector>

namespace caraoke {

/// Builds and prints a fixed-column text table. Cells are strings; numeric
/// convenience overloads format with a sensible default precision.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append a fully formed row; must match the header count.
  void addRow(std::vector<std::string> cells);

  /// Format a double with the given number of decimals.
  static std::string num(double v, int decimals = 2);

  /// Render with column alignment and a separator under the header.
  std::string render() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by bench binaries to label each experiment.
void printBanner(const std::string& title);

}  // namespace caraoke
