#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace caraoke {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emitRow(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emitRow(row);
  return os.str();
}

void Table::print() const { std::cout << render(); }

void printBanner(const std::string& title) {
  std::cout << '\n' << std::string(72, '=') << '\n'
            << "  " << title << '\n'
            << std::string(72, '=') << '\n';
}

}  // namespace caraoke
