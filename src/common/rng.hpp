// Deterministic random number generation for simulations and tests.
//
// Every stochastic component in the codebase draws from an explicitly seeded
// Rng so that experiments are reproducible run-to-run; there is no hidden
// global generator. Rng is cheap to copy-construct from a seed and cheap to
// fork into decorrelated child streams.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace caraoke {

/// Seeded pseudo-random source wrapping a 64-bit Mersenne Twister with the
/// distribution helpers the simulator needs. Not thread-safe; give each
/// thread (or each simulated device) its own stream via fork().
class Rng {
 public:
  /// Construct from a 64-bit seed. Equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00d'1234ull) : eng_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal sample scaled to the given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Gaussian truncated to [lo, hi] by rejection (falls back to clamping
  /// after 64 rejections so pathological bounds cannot hang a simulation).
  double truncatedGaussian(double mean, double stddev, double lo, double hi);

  /// Exponentially distributed sample with the given rate (events/second).
  /// Used for Poisson arrival processes.
  double exponential(double rate);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Uniform phase in [0, 2*pi).
  double phase();

  /// n distinct integers drawn uniformly from [0, populationSize), in
  /// random order. Requires n <= populationSize.
  std::vector<std::size_t> sampleWithoutReplacement(std::size_t populationSize,
                                                    std::size_t n);

  /// Derive an independent child stream. Forking advances this stream, so
  /// two forks from the same parent are decorrelated from each other.
  Rng fork();

  /// Raw 64-bit draw, exposed for hashing-style uses (packet contents).
  std::uint64_t next() { return eng_(); }

  /// The underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace caraoke
