// Lightweight expected/error type for recoverable failures.
//
// Expected failures (a packet that fails its CRC, a localization with no
// on-road solution) are values, not exceptions; exceptions are reserved for
// programming errors. Result<T> is a minimal std::expected stand-in that
// carries either a T or a human-readable error string.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace caraoke {

/// Either a value of type T or an error message. Modeled after
/// std::expected<T, std::string> (not available in our toolchain's stdlib).
template <typename T>
class Result {
 public:
  /// Construct a success result.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design

  /// Construct a failure result with a diagnostic message.
  static Result failure(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  /// True when a value is present.
  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Access the value; throws std::logic_error if this is a failure
  /// (that access is a programming error, hence an exception).
  const T& value() const {
    if (!value_) throw std::logic_error("Result::value() on error: " + error_);
    return *value_;
  }
  T& value() {
    if (!value_) throw std::logic_error("Result::value() on error: " + error_);
    return *value_;
  }

  /// The value, or a fallback when this is a failure.
  T valueOr(T fallback) const { return value_ ? *value_ : std::move(fallback); }

  /// The diagnostic message; empty for success results.
  const std::string& error() const { return error_; }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace caraoke
