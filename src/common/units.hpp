// Physical-unit helpers and constants shared across the Caraoke codebase.
//
// Everything internal is SI: seconds, meters, hertz, watts. These inline
// helpers make call sites read like the paper ("512_us", "915 MHz") without
// introducing a heavyweight unit-type system.
#pragma once

#include <cmath>

namespace caraoke {

/// Speed of light in vacuum [m/s]. Used for wavelength and path delays.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// pi with double precision.
inline constexpr double kPi = 3.14159265358979323846;

/// Two pi, the angular frequency multiplier.
inline constexpr double kTwoPi = 2.0 * kPi;

// --- frequency ---------------------------------------------------------

/// Kilohertz to hertz.
constexpr double kHz(double v) { return v * 1e3; }
/// Megahertz to hertz.
constexpr double MHz(double v) { return v * 1e6; }
/// Gigahertz to hertz.
constexpr double GHz(double v) { return v * 1e9; }

// --- time ---------------------------------------------------------------

/// Microseconds to seconds.
constexpr double usec(double v) { return v * 1e-6; }
/// Milliseconds to seconds.
constexpr double msec(double v) { return v * 1e-3; }
/// Seconds identity (for symmetric call sites).
constexpr double sec(double v) { return v; }

// --- length -------------------------------------------------------------

/// Feet to meters. The paper quotes pole heights and lane widths in feet.
constexpr double feet(double v) { return v * 0.3048; }
/// Inches to meters (antenna separation is quoted in inches).
constexpr double inches(double v) { return v * 0.0254; }
/// Centimeters to meters.
constexpr double cm(double v) { return v * 0.01; }

// --- speed --------------------------------------------------------------

/// Miles per hour to meters per second. Speed experiments use mph.
constexpr double mph(double v) { return v * 0.44704; }
/// Meters per second back to miles per hour, for reporting.
constexpr double toMph(double mps) { return mps / 0.44704; }

// --- angles -------------------------------------------------------------

/// Degrees to radians.
constexpr double deg2rad(double d) { return d * kPi / 180.0; }
/// Radians to degrees.
constexpr double rad2deg(double r) { return r * 180.0 / kPi; }

// --- power --------------------------------------------------------------

/// Milliwatts to watts.
constexpr double mW(double v) { return v * 1e-3; }
/// Microwatts to watts.
constexpr double uW(double v) { return v * 1e-6; }

/// Linear power ratio to decibels.
inline double toDb(double ratio) { return 10.0 * std::log10(ratio); }
/// Decibels to linear power ratio.
inline double fromDb(double db) { return std::pow(10.0, db / 10.0); }

/// Wavelength of a carrier frequency [m].
inline double wavelength(double carrierHz) { return kSpeedOfLight / carrierHz; }

/// Wrap an angle to (-pi, pi].
inline double wrapPhase(double phi) {
  double r = std::fmod(phi + kPi, kTwoPi);
  if (r <= 0.0) r += kTwoPi;  // maps odd multiples of pi to +pi, not -pi
  return r - kPi;
}

}  // namespace caraoke
