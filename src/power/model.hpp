// Energy model of the Caraoke reader (paper §10, §12.5).
//
// Measured numbers from the paper: 900 mW in active mode, 69 uW in sleep
// (modem excluded), a query taking ~1 ms with active windows of ~10 ms, a
// 500 mW solar panel (6 x 7.5 cm at ~10 mW/cm^2), and a rechargeable
// battery bridging nights and cloudy days. Duty cycling brings the average
// to ~9 mW — 56x below harvest. This module reproduces that arithmetic and
// simulates multi-day operation.
#pragma once

#include <cstddef>
#include <vector>

namespace caraoke::power {

/// Reader power states (modem handled separately, as in the paper).
struct PowerProfile {
  double activeWatts = 0.9;    ///< §12.5 measured active power.
  double sleepWatts = 69e-6;   ///< §12.5 measured sleep power.
  /// Modem, duty-cycled independently: LTE bursts at ~1.5 W but only for
  /// tens of ms per minute (paper footnote 15).
  double modemBurstWatts = 1.5;
  double modemBurstSec = 0.05;
  double modemPeriodSec = 60.0;

  /// Average modem power under its own duty cycle.
  double modemAverageWatts() const {
    return modemBurstWatts * (modemBurstSec / modemPeriodSec);
  }
};

/// The reader's measurement duty cycle.
struct DutyCycle {
  double activeSecPerCycle = 0.010;  ///< ~10 ms active window (§10).
  double cyclePeriodSec = 1.0;       ///< One measurement per second.

  double dutyFraction() const { return activeSecPerCycle / cyclePeriodSec; }
};

/// Average reader power (excluding modem) under a duty cycle — the
/// paper's "9 mW" figure.
double averagePowerWatts(const PowerProfile& profile, const DutyCycle& duty);

/// Solar harvesting: a panel with the given peak output and a simple
/// day/night irradiance profile.
struct SolarPanel {
  double peakWatts = 0.5;       ///< OSEPP SC10050: 500 mW in full sun.
  double sunriseHour = 6.0;
  double sunsetHour = 18.0;
  /// Weather multiplier in [0, 1]; 1 = clear sky.
  double weather = 1.0;

  /// Output at an hour-of-day in [0, 24): a half-sine between sunrise and
  /// sunset scaled by the weather factor.
  double outputWatts(double hourOfDay) const;
};

/// A rechargeable storage element tracked in joules.
struct Battery {
  double capacityJoules = 2.0 * 3.7 * 3600.0;  ///< 2 Ah Li-ion at 3.7 V.
  double chargeJoules = 0.0;

  /// Apply net power for dt seconds; clamps at [0, capacity]. Returns
  /// false if the battery hit empty during the step (brown-out).
  bool apply(double netWatts, double dtSec);

  double stateOfCharge() const {
    return capacityJoules > 0 ? chargeJoules / capacityJoules : 0.0;
  }
};

/// One simulated day's summary.
struct DayRecord {
  double harvestedJoules = 0.0;
  double consumedJoules = 0.0;
  double endSoc = 0.0;
  bool brownout = false;
};

/// Simulate `days` days of operation at `duty`, with per-day weather
/// factors (empty = all clear). Battery starts at startSoc.
std::vector<DayRecord> simulateOperation(const PowerProfile& profile,
                                         const DutyCycle& duty,
                                         const SolarPanel& panel,
                                         Battery battery, std::size_t days,
                                         const std::vector<double>& weather,
                                         bool includeModem = false);

/// §12.5 headline: hours of full-sun harvest needed to run the reader for
/// `runtimeSec` at the duty cycle (the paper: 3 h of sun ≈ 1 week).
double sunHoursForRuntime(const PowerProfile& profile, const DutyCycle& duty,
                          const SolarPanel& panel, double runtimeSec);

}  // namespace caraoke::power
