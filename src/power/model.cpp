#include "power/model.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace caraoke::power {

double averagePowerWatts(const PowerProfile& profile, const DutyCycle& duty) {
  const double d = duty.dutyFraction();
  return profile.activeWatts * d + profile.sleepWatts * (1.0 - d);
}

double SolarPanel::outputWatts(double hourOfDay) const {
  if (hourOfDay < sunriseHour || hourOfDay > sunsetHour) return 0.0;
  const double span = sunsetHour - sunriseHour;
  if (span <= 0.0) return 0.0;
  const double x = (hourOfDay - sunriseHour) / span;  // 0..1 across the day
  return peakWatts * weather * std::sin(kPi * x);
}

bool Battery::apply(double netWatts, double dtSec) {
  chargeJoules += netWatts * dtSec;
  bool ok = true;
  if (chargeJoules < 0.0) {
    chargeJoules = 0.0;
    ok = false;
  }
  chargeJoules = std::min(chargeJoules, capacityJoules);
  return ok;
}

std::vector<DayRecord> simulateOperation(const PowerProfile& profile,
                                         const DutyCycle& duty,
                                         const SolarPanel& panel,
                                         Battery battery, std::size_t days,
                                         const std::vector<double>& weather,
                                         bool includeModem) {
  const double drawWatts = averagePowerWatts(profile, duty) +
                           (includeModem ? profile.modemAverageWatts() : 0.0);
  std::vector<DayRecord> records;
  const double dtSec = 60.0;  // one-minute steps
  for (std::size_t day = 0; day < days; ++day) {
    SolarPanel today = panel;
    if (day < weather.size()) today.weather = weather[day];
    DayRecord record;
    for (double t = 0.0; t < 24.0 * 3600.0; t += dtSec) {
      const double hour = t / 3600.0;
      const double harvest = today.outputWatts(hour);
      record.harvestedJoules += harvest * dtSec;
      record.consumedJoules += drawWatts * dtSec;
      if (!battery.apply(harvest - drawWatts, dtSec)) record.brownout = true;
    }
    record.endSoc = battery.stateOfCharge();
    records.push_back(record);
  }
  return records;
}

double sunHoursForRuntime(const PowerProfile& profile, const DutyCycle& duty,
                          const SolarPanel& panel, double runtimeSec) {
  const double energyNeeded = averagePowerWatts(profile, duty) * runtimeSec;
  if (panel.peakWatts <= 0.0) return 0.0;
  return energyNeeded / panel.peakWatts / 3600.0;
}

}  // namespace caraoke::power
