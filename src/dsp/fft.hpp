// Fast Fourier transform: iterative radix-2 with a Bluestein fallback so any
// length works. This is the reader's workhorse (§5 of the paper takes a
// 512 us / 2048-point FFT of every collision).
//
// Conventions: forward transform is unnormalized, inverse scales by 1/N, so
// ifft(fft(x)) == x. Matches the usual DFT definition
//   X[k] = sum_n x[n] * exp(-j 2 pi k n / N).
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace caraoke::dsp {

/// True when n is a power of two (n >= 1).
bool isPowerOfTwo(std::size_t n);

/// In-place forward FFT. Requires data.size() to be a power of two.
void fftInPlace(CVec& data);

/// In-place inverse FFT (includes the 1/N scaling). Power-of-two only.
void ifftInPlace(CVec& data);

/// Forward FFT of arbitrary length. Power-of-two inputs use radix-2;
/// other lengths use Bluestein's chirp-z algorithm.
CVec fft(CSpan input);

/// Inverse FFT of arbitrary length (with 1/N scaling).
CVec ifft(CSpan input);

/// Reference O(N^2) DFT; used by tests to validate fft() and small enough
/// problems where clarity beats speed.
CVec dftReference(CSpan input);

/// Magnitudes of a complex spectrum.
std::vector<double> magnitude(CSpan spectrum);

/// Squared magnitudes (power) of a complex spectrum.
std::vector<double> power(CSpan spectrum);

}  // namespace caraoke::dsp
