// Small statistics toolkit used by estimators, thresholds, and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace caraoke::dsp {

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> v);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> v);

/// Sample standard deviation.
double stddev(std::span<const double> v);

/// Median (average of middle two for even sizes); 0 for empty input.
double median(std::span<const double> v);

/// Median absolute deviation — a robust spread estimate used for
/// noise-floor thresholds in peak detection.
double medianAbsDeviation(std::span<const double> v);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::span<const double> v, double p);

/// Root-mean-square of a real sequence.
double rms(std::span<const double> v);

/// Maximum value; 0 for empty input.
double maxValue(std::span<const double> v);

/// Index of the maximum value; 0 for empty input.
std::size_t argmax(std::span<const double> v);

/// Running accumulator for mean/stddev/min/max without storing samples.
class RunningStats {
 public:
  /// Fold one observation in.
  void add(double x);
  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Mean of observations; 0 when empty.
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  /// Sample standard deviation; 0 with fewer than 2 observations.
  double stddev() const;
  /// Smallest observation; 0 when empty.
  double min() const { return n_ ? min_ : 0.0; }
  /// Largest observation; 0 when empty.
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sumSq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace caraoke::dsp
