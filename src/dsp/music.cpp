#include "dsp/music.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace caraoke::dsp {

CMatrix sampleCovariance(const std::vector<CVec>& snapshots) {
  if (snapshots.empty())
    throw std::invalid_argument("sampleCovariance: no snapshots");
  const std::size_t n = snapshots.front().size();
  CMatrix r(n, n);
  for (const CVec& x : snapshots) {
    if (x.size() != n)
      throw std::invalid_argument("sampleCovariance: ragged snapshots");
    r.addScaled(CMatrix::outer(x), 1.0);
  }
  r.scale(1.0 / static_cast<double>(snapshots.size()));
  return r;
}

std::vector<MusicPoint> musicSpectrum(const CMatrix& covariance,
                                      const SteeringFn& steering,
                                      const MusicConfig& config) {
  const std::size_t n = covariance.rows();
  if (n != covariance.cols())
    throw std::invalid_argument("musicSpectrum: covariance must be square");
  if (config.numSources >= n)
    throw std::invalid_argument("musicSpectrum: too many sources for array");

  CMatrix loaded = covariance;
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += loaded(i, i).real();
  for (std::size_t i = 0; i < n; ++i)
    loaded(i, i) += config.diagonalLoading * trace / static_cast<double>(n);

  const EigenResult eig = eigHermitian(loaded);

  // Noise subspace: eigenvectors after the strongest numSources ones.
  const std::size_t noiseDim = n - config.numSources;
  std::vector<CVec> noiseBasis(noiseDim, CVec(n));
  for (std::size_t c = 0; c < noiseDim; ++c)
    for (std::size_t r = 0; r < n; ++r)
      noiseBasis[c][r] = eig.vectors(r, config.numSources + c);

  std::vector<MusicPoint> spectrum(config.angleSteps);
  const double span = config.angleEndRad - config.angleBeginRad;
  for (std::size_t i = 0; i < config.angleSteps; ++i) {
    const double angle =
        config.angleBeginRad +
        span * static_cast<double>(i) /
            static_cast<double>(std::max<std::size_t>(config.angleSteps - 1, 1));
    CVec a = steering(angle);
    if (a.size() != n)
      throw std::invalid_argument("musicSpectrum: steering length mismatch");
    const double an = norm2(a);
    if (an > 0) for (auto& x : a) x /= an;
    double projection = 0.0;
    for (const CVec& e : noiseBasis) projection += std::norm(innerProduct(e, a));
    spectrum[i] = {angle, 1.0 / std::max(projection, 1e-15)};
  }
  return spectrum;
}

std::vector<MusicPoint> musicPeaks(const std::vector<MusicPoint>& spectrum,
                                   std::size_t maxPeaks,
                                   double minSeparationRad) {
  // Local maxima, then greedy strongest-first selection with separation.
  std::vector<MusicPoint> maxima;
  for (std::size_t i = 1; i + 1 < spectrum.size(); ++i) {
    if (spectrum[i].power >= spectrum[i - 1].power &&
        spectrum[i].power > spectrum[i + 1].power)
      maxima.push_back(spectrum[i]);
  }
  std::sort(maxima.begin(), maxima.end(),
            [](const MusicPoint& a, const MusicPoint& b) {
              return a.power > b.power;
            });
  std::vector<MusicPoint> kept;
  for (const MusicPoint& m : maxima) {
    if (kept.size() >= maxPeaks) break;
    const bool close = std::any_of(
        kept.begin(), kept.end(), [&](const MusicPoint& k) {
          return std::abs(k.angleRad - m.angleRad) < minSeparationRad;
        });
    if (!close) kept.push_back(m);
  }
  return kept;
}

}  // namespace caraoke::dsp
