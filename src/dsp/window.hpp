// Analysis windows. The counter trades off leakage (which smears a strong
// transponder's energy into neighbors' bins) against main-lobe width (which
// merges close CFOs); windows make that trade explicit and testable.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"

namespace caraoke::dsp {

enum class WindowKind { kRect, kHann, kHamming, kBlackman };

/// Window coefficients of the given length (periodic form, suitable for
/// spectral analysis).
std::vector<double> makeWindow(WindowKind kind, std::size_t n);

/// Element-wise multiply of samples by a window of the same length.
CVec applyWindow(CSpan samples, std::span<const double> window);

/// Sum of window coefficients — the amplitude normalization factor for a
/// windowed FFT's peak values.
double windowGain(std::span<const double> window);

}  // namespace caraoke::dsp
