// FIR filtering, matched filtering, and single-bin (Goertzel) evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"

namespace caraoke::dsp {

/// Windowed-sinc low-pass FIR design. cutoff is normalized to the sample
/// rate (0 < cutoff < 0.5); taps must be odd for a symmetric filter.
std::vector<double> designLowPass(double cutoff, std::size_t taps);

/// Direct-form convolution of a complex signal with real taps ("same"
/// output length, group delay compensated for symmetric filters).
CVec firFilter(CSpan signal, std::span<const double> taps);

/// Length-w moving average of a real sequence ("same" length, edges use
/// the available samples).
std::vector<double> movingAverage(std::span<const double> v, std::size_t w);

/// Goertzel evaluation of a single DFT coefficient at a possibly
/// non-integer bin: X(f) = sum_n x[n] e^{-j 2 pi f n / N}. Used to probe
/// a transponder's exact CFO without a full FFT.
cdouble goertzel(CSpan signal, double fractionalBin);

/// Correlate the signal against a template (complex conjugate matched
/// filter); returns correlation magnitude at each lag in [0, n - m].
std::vector<double> matchedFilter(CSpan signal, CSpan templ);

}  // namespace caraoke::dsp
