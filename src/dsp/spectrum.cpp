#include "dsp/spectrum.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace caraoke::dsp {

BinMapper::BinMapper(std::size_t fftSize, double sampleRateHz)
    : n_(fftSize), sampleRateHz_(sampleRateHz) {
  if (fftSize == 0 || sampleRateHz <= 0)
    throw std::invalid_argument("BinMapper: invalid parameters");
}

double BinMapper::binToFreq(double bin) const {
  const double n = static_cast<double>(n_);
  double b = std::fmod(bin, n);
  if (b < 0) b += n;
  if (b >= n / 2.0) b -= n;
  return b * binWidthHz();
}

std::size_t BinMapper::freqToBin(double freqHz) const {
  const double n = static_cast<double>(n_);
  double bin = std::round(freqHz / binWidthHz());
  bin = std::fmod(bin, n);
  if (bin < 0) bin += n;
  return static_cast<std::size_t>(bin) % n_;
}

CVec mix(CSpan signal, double freqHz, double sampleRateHz) {
  CVec out(signal.size());
  const double step = kTwoPi * freqHz / sampleRateHz;
  // Incremental rotation avoids a sin/cos per sample while keeping error
  // negligible over our window lengths (<= 64k samples).
  cdouble rotor(1.0, 0.0);
  const cdouble increment(std::cos(step), std::sin(step));
  for (std::size_t i = 0; i < signal.size(); ++i) {
    out[i] = signal[i] * rotor;
    rotor *= increment;
    if ((i & 1023u) == 1023u) rotor /= std::abs(rotor);  // renormalize drift
  }
  return out;
}

CVec fftShift(CSpan spectrum) {
  const std::size_t n = spectrum.size();
  CVec out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = spectrum[(i + half) % n];
  return out;
}

double signalPower(CSpan signal) {
  if (signal.empty()) return 0.0;
  double p = 0.0;
  for (const auto& x : signal) p += std::norm(x);
  return p / static_cast<double>(signal.size());
}

double snrDb(CSpan reference, CSpan noisy) {
  if (reference.size() != noisy.size())
    throw std::invalid_argument("snrDb: length mismatch");
  double sig = 0.0, err = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    sig += std::norm(reference[i]);
    err += std::norm(noisy[i] - reference[i]);
  }
  if (err <= 0.0) return 300.0;  // effectively infinite
  return toDb(sig / err);
}

}  // namespace caraoke::dsp
