#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/prof_stages.hpp"

namespace caraoke::dsp {

namespace {

// Handles resolved once; per-transform cost is one relaxed fetch_add.
obs::Counter& fftCallCounter() {
  static obs::Counter& c = obs::globalRegistry().counter("dsp.fft.calls");
  return c;
}
obs::Counter& ifftCallCounter() {
  static obs::Counter& c = obs::globalRegistry().counter("dsp.ifft.calls");
  return c;
}
obs::Counter& bluesteinCallCounter() {
  static obs::Counter& c =
      obs::globalRegistry().counter("dsp.fft.bluestein_calls");
  return c;
}

}  // namespace

bool isPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

// Bit-reversal permutation, computed incrementally.
void bitReverse(CVec& a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

// Shared radix-2 butterfly core; `invert` selects the inverse transform.
void radix2(CVec& a, bool invert) {
  const std::size_t n = a.size();
  if (!isPowerOfTwo(n))
    throw std::invalid_argument("radix-2 FFT needs a power-of-two length");
  bitReverse(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (invert ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cdouble wl(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = a[i + k];
        const cdouble v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (invert) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

std::size_t nextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Bluestein's algorithm: express the DFT as a convolution and evaluate it
// with power-of-two FFTs. Handles any length, used for odd-sized windows.
CVec bluestein(CSpan input, bool invert) {
  const std::size_t n = input.size();
  const double sign = invert ? 1.0 : -1.0;
  // Chirp c[k] = exp(sign * j * pi * k^2 / n). k^2 mod 2n keeps the argument
  // small and exact for large k.
  CVec chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) /
                         static_cast<double>(n);
    chirp[k] = cdouble(std::cos(angle), std::sin(angle));
  }
  const std::size_t m = nextPowerOfTwo(2 * n - 1);
  CVec a(m, cdouble{}), b(m, cdouble{});
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  for (std::size_t k = 0; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    if (k != 0) b[m - k] = std::conj(chirp[k]);
  }
  radix2(a, false);
  radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  radix2(a, true);
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (invert) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : out) x *= inv;
  }
  return out;
}

}  // namespace

void fftInPlace(CVec& data) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kFft);
  fftCallCounter().inc();
  radix2(data, false);
}
void ifftInPlace(CVec& data) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kFft);
  ifftCallCounter().inc();
  radix2(data, true);
}

CVec fft(CSpan input) {
  if (input.empty()) return {};
  CARAOKE_PROF_SCOPE(obs::prof::stage::kFft);
  fftCallCounter().inc();
  if (isPowerOfTwo(input.size())) {
    CVec data(input.begin(), input.end());
    radix2(data, false);
    return data;
  }
  bluesteinCallCounter().inc();
  return bluestein(input, false);
}

CVec ifft(CSpan input) {
  if (input.empty()) return {};
  CARAOKE_PROF_SCOPE(obs::prof::stage::kFft);
  ifftCallCounter().inc();
  if (isPowerOfTwo(input.size())) {
    CVec data(input.begin(), input.end());
    radix2(data, true);
    return data;
  }
  bluesteinCallCounter().inc();
  return bluestein(input, true);
}

CVec dftReference(CSpan input) {
  const std::size_t n = input.size();
  CVec out(n, cdouble{});
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc{};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -kTwoPi * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += input[t] * cdouble(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> magnitude(CSpan spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i)
    out[i] = std::abs(spectrum[i]);
  return out;
}

std::vector<double> power(CSpan spectrum) {
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i)
    out[i] = std::norm(spectrum[i]);
  return out;
}

}  // namespace caraoke::dsp
