// Dense complex linear algebra: just enough for array processing.
//
// The multipath profiler (paper §12.2, Fig 14) needs a sample covariance
// matrix and its eigendecomposition for MUSIC. Matrices here are small
// (tens of antenna positions), so clarity wins over blocking/vectorization.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"

namespace caraoke::dsp {

/// Row-major dense complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  /// rows x cols zero matrix.
  CMatrix(std::size_t rows, std::size_t cols);

  /// Identity of size n.
  static CMatrix identity(std::size_t n);

  /// Outer product v * v^H (rank-1 Hermitian update building block).
  static CMatrix outer(CSpan v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Element access (unchecked in release; asserts in debug).
  cdouble& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const cdouble& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Matrix product this * rhs.
  CMatrix multiply(const CMatrix& rhs) const;

  /// Matrix-vector product this * v.
  CVec multiply(CSpan v) const;

  /// Conjugate transpose.
  CMatrix hermitian() const;

  /// this += alpha * other (element-wise).
  void addScaled(const CMatrix& other, double alpha);

  /// Scale all elements by alpha.
  void scale(double alpha);

  /// Max |a_ij - b_ij| between two same-shaped matrices.
  static double maxAbsDiff(const CMatrix& a, const CMatrix& b);

  /// Frobenius norm.
  double frobeniusNorm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

/// Eigendecomposition of a Hermitian matrix.
struct EigenResult {
  /// Eigenvalues in descending order (real: the input is Hermitian).
  std::vector<double> values;
  /// Columns of this matrix are the matching orthonormal eigenvectors.
  CMatrix vectors;
};

/// Cyclic complex Jacobi eigensolver for Hermitian matrices.
/// Converges quadratically; `tolerance` bounds the largest remaining
/// off-diagonal magnitude relative to the Frobenius norm.
EigenResult eigHermitian(const CMatrix& a, double tolerance = 1e-12,
                         int maxSweeps = 64);

/// Inner product <a, b> = a^H b.
cdouble innerProduct(CSpan a, CSpan b);

/// Euclidean norm of a complex vector.
double norm2(CSpan v);

}  // namespace caraoke::dsp
