#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/stats.hpp"
#include "obs/prof.hpp"
#include "obs/prof_stages.hpp"

namespace caraoke::dsp {

namespace {

// Search range [begin, end) clamped to the spectrum and excluding the
// outermost bins (local-maximum tests need both neighbors).
std::pair<std::size_t, std::size_t> searchRange(
    std::size_t size, const PeakDetectorConfig& config) {
  const std::size_t begin = std::max<std::size_t>(config.searchBegin, 1);
  const std::size_t end =
      std::min(config.searchEnd == 0 ? size : config.searchEnd, size);
  return {begin, end > 0 ? end - 1 : 0};
}

}  // namespace

double adaptiveThreshold(std::span<const double> mag,
                         const PeakDetectorConfig& config) {
  if (mag.empty()) return config.absoluteFloor;
  const auto [begin, end] = searchRange(mag.size(), config);
  const std::span<const double> window =
      begin < end ? mag.subspan(begin, end - begin) : mag;
  const double med = median(window);
  const double mad = medianAbsDeviation(window);
  // 1.4826 converts MAD to a Gaussian-equivalent sigma.
  const double t = med + config.thresholdMads * 1.4826 * mad;
  return std::max(t, config.absoluteFloor);
}

std::vector<double> cfarThreshold(std::span<const double> mag,
                                  const PeakDetectorConfig& config) {
  const std::size_t n = mag.size();
  std::vector<double> threshold(n, config.absoluteFloor);
  std::vector<double> training;
  for (std::size_t i = 0; i < n; ++i) {
    training.clear();
    const std::size_t guard = config.cfarGuardBins;
    const std::size_t window = config.cfarWindowBins;
    // Left training cells.
    for (std::size_t k = guard + 1; k <= guard + window; ++k) {
      if (k > i) break;
      training.push_back(mag[i - k]);
    }
    // Right training cells.
    for (std::size_t k = guard + 1; k <= guard + window; ++k) {
      if (i + k >= n) break;
      training.push_back(mag[i + k]);
    }
    if (training.empty()) continue;
    threshold[i] = std::max(config.cfarFactor * median(training),
                            config.absoluteFloor);
  }
  return threshold;
}

std::vector<Peak> findPeaks(std::span<const double> mag,
                            const PeakDetectorConfig& config) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kPeak);
  std::vector<Peak> peaks;
  if (mag.size() < 3) return peaks;

  const auto [begin, end] = searchRange(mag.size(), config);

  std::vector<double> cfar;
  double global = 0.0;
  if (config.mode == ThresholdMode::kCfar)
    cfar = cfarThreshold(mag, config);
  else
    global = adaptiveThreshold(mag, config);

  for (std::size_t i = begin; i < end; ++i) {
    const double threshold =
        config.mode == ThresholdMode::kCfar ? cfar[i] : global;
    if (mag[i] < threshold) continue;
    if (mag[i] < mag[i - 1] || mag[i] < mag[i + 1]) continue;
    // Plateau tie-break: only accept the left edge of a flat top.
    if (mag[i] == mag[i - 1]) continue;
    peaks.push_back({i, mag[i]});
  }

  if (config.minSeparationBins > 1 && peaks.size() > 1) {
    // Greedy merge: strongest peak claims its neighborhood.
    std::vector<Peak> byStrength = peaks;
    std::sort(byStrength.begin(), byStrength.end(),
              [](const Peak& a, const Peak& b) {
                return a.magnitude > b.magnitude;
              });
    std::vector<Peak> kept;
    for (const Peak& p : byStrength) {
      const bool tooClose = std::any_of(
          kept.begin(), kept.end(), [&](const Peak& k) {
            const std::size_t d = p.bin > k.bin ? p.bin - k.bin : k.bin - p.bin;
            return d < config.minSeparationBins;
          });
      if (!tooClose) kept.push_back(p);
    }
    std::sort(kept.begin(), kept.end(),
              [](const Peak& a, const Peak& b) { return a.bin < b.bin; });
    return kept;
  }
  return peaks;
}

double interpolatePeakOffset(std::span<const double> mag, std::size_t bin) {
  if (bin == 0 || bin + 1 >= mag.size()) return 0.0;
  const double a = mag[bin - 1];
  const double b = mag[bin];
  const double c = mag[bin + 1];
  const double denom = a - 2.0 * b + c;
  if (std::abs(denom) < 1e-12) return 0.0;
  const double offset = 0.5 * (a - c) / denom;
  return std::clamp(offset, -0.5, 0.5);
}

}  // namespace caraoke::dsp
