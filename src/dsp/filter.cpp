#include "dsp/filter.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "obs/prof.hpp"
#include "obs/prof_stages.hpp"

namespace caraoke::dsp {

std::vector<double> designLowPass(double cutoff, std::size_t taps) {
  if (cutoff <= 0.0 || cutoff >= 0.5)
    throw std::invalid_argument("designLowPass: cutoff must be in (0, 0.5)");
  if (taps % 2 == 0 || taps < 3)
    throw std::invalid_argument("designLowPass: taps must be odd and >= 3");
  std::vector<double> h(taps);
  const double mid = static_cast<double>(taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - mid;
    const double sinc =
        t == 0.0 ? 2.0 * cutoff : std::sin(kTwoPi * cutoff * t) / (kPi * t);
    // Hamming window keeps stopband ripple low enough for channelization.
    const double w =
        0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) /
                               static_cast<double>(taps - 1));
    h[i] = sinc * w;
    sum += h[i];
  }
  for (auto& x : h) x /= sum;  // unity DC gain
  return h;
}

CVec firFilter(CSpan signal, std::span<const double> taps) {
  const std::size_t n = signal.size();
  const std::size_t m = taps.size();
  CVec out(n, cdouble{});
  const std::size_t delay = m / 2;
  for (std::size_t i = 0; i < n; ++i) {
    cdouble acc{};
    for (std::size_t k = 0; k < m; ++k) {
      const long idx = static_cast<long>(i + delay) - static_cast<long>(k);
      if (idx < 0 || idx >= static_cast<long>(n)) continue;
      acc += signal[static_cast<std::size_t>(idx)] * taps[k];
    }
    out[i] = acc;
  }
  return out;
}

std::vector<double> movingAverage(std::span<const double> v, std::size_t w) {
  if (w == 0) throw std::invalid_argument("movingAverage: zero window");
  std::vector<double> out(v.size(), 0.0);
  double acc = 0.0;
  std::size_t count = 0;
  // Centered window with shrinking edges.
  const std::size_t half = w / 2;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::size_t lo = i > half ? i - half : 0;
    const std::size_t hi = std::min(i + half, v.size() - 1);
    acc = 0.0;
    count = 0;
    for (std::size_t k = lo; k <= hi; ++k) {
      acc += v[k];
      ++count;
    }
    out[i] = acc / static_cast<double>(count);
  }
  return out;
}

cdouble goertzel(CSpan signal, double fractionalBin) {
  // Goertzel second-order recurrence: one real coefficient per bin, ~3
  // multiply-adds per sample instead of a sincos — this sits on the hot
  // path of the decoder's CFO search and the sparse FFT's verification.
  CARAOKE_PROF_SCOPE(obs::prof::stage::kGoertzel);
  const std::size_t n = signal.size();
  if (n == 0) return {};
  const double omega = kTwoPi * fractionalBin / static_cast<double>(n);
  const double coefficient = 2.0 * std::cos(omega);
  cdouble s1{}, s2{};
  for (std::size_t t = 0; t < n; ++t) {
    const cdouble s0 = signal[t] + coefficient * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  // sum_t x[t] e^{-j w t} = (s1 - e^{-j w} s2) * e^{-j w (n-1)}.
  const cdouble expNegW(std::cos(omega), -std::sin(omega));
  const double finalAngle = -omega * static_cast<double>(n - 1);
  return (s1 - expNegW * s2) *
         cdouble(std::cos(finalAngle), std::sin(finalAngle));
}

std::vector<double> matchedFilter(CSpan signal, CSpan templ) {
  if (templ.empty() || templ.size() > signal.size()) return {};
  const std::size_t lags = signal.size() - templ.size() + 1;
  std::vector<double> out(lags);
  for (std::size_t lag = 0; lag < lags; ++lag) {
    cdouble acc{};
    for (std::size_t k = 0; k < templ.size(); ++k)
      acc += signal[lag + k] * std::conj(templ[k]);
    out[lag] = std::abs(acc);
  }
  return out;
}

}  // namespace caraoke::dsp
