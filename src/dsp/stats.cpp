#include "dsp/stats.hpp"

#include <algorithm>
#include <cmath>

namespace caraoke::dsp {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double median(std::span<const double> v) {
  if (v.empty()) return 0.0;
  std::vector<double> tmp(v.begin(), v.end());
  const std::size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<long>(mid), tmp.end());
  double hi = tmp[mid];
  if (tmp.size() % 2 == 1) return hi;
  std::nth_element(tmp.begin(), tmp.begin() + static_cast<long>(mid) - 1,
                   tmp.begin() + static_cast<long>(mid));
  return 0.5 * (tmp[mid - 1] + hi);
}

double medianAbsDeviation(std::span<const double> v) {
  if (v.empty()) return 0.0;
  const double m = median(v);
  std::vector<double> dev(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) dev[i] = std::abs(v[i] - m);
  return median(dev);
}

double percentile(std::span<const double> v, double p) {
  if (v.empty()) return 0.0;
  std::vector<double> tmp(v.begin(), v.end());
  std::sort(tmp.begin(), tmp.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(tmp.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, tmp.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return tmp[lo] * (1.0 - frac) + tmp[hi] * frac;
}

double rms(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

double maxValue(std::span<const double> v) {
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

std::size_t argmax(std::span<const double> v) {
  if (v.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sumSq_ += x * x;
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  const double m = mean();
  const double var =
      (sumSq_ - static_cast<double>(n_) * m * m) / static_cast<double>(n_ - 1);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace caraoke::dsp
