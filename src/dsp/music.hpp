// MUSIC (MUltiple SIgnal Classification) pseudo-spectrum estimation.
//
// Used to reproduce the paper's Fig 14: an antenna on a rotating arm
// emulates a large aperture (SAR), channels measured along the arc form
// snapshots, and MUSIC resolves the multipath profile, showing that the
// outdoor pole-mounted deployment is line-of-sight dominated.
#pragma once

#include <functional>
#include <vector>

#include "dsp/linalg.hpp"
#include "dsp/types.hpp"

namespace caraoke::dsp {

/// Produces the array steering vector for a candidate angle (radians).
/// The vector length must equal the number of array elements.
using SteeringFn = std::function<CVec(double angleRad)>;

/// Configuration for the MUSIC estimator.
struct MusicConfig {
  /// Number of signal sources assumed (dimension of the signal subspace).
  std::size_t numSources = 1;
  /// Angle grid over which the pseudo-spectrum is evaluated.
  double angleBeginRad = 0.0;
  double angleEndRad = 3.14159265358979323846;
  std::size_t angleSteps = 181;
  /// Diagonal loading added to the covariance for numerical robustness,
  /// relative to its trace.
  double diagonalLoading = 1e-9;
};

/// One point of the pseudo-spectrum.
struct MusicPoint {
  double angleRad = 0.0;
  double power = 0.0;
};

/// Sample covariance R = (1/K) * sum_k x_k x_k^H from snapshot vectors.
CMatrix sampleCovariance(const std::vector<CVec>& snapshots);

/// MUSIC pseudo-spectrum over the configured angle grid. The covariance
/// must be square with size equal to the steering vector length.
std::vector<MusicPoint> musicSpectrum(const CMatrix& covariance,
                                      const SteeringFn& steering,
                                      const MusicConfig& config);

/// Convenience: peak angles of a pseudo-spectrum, strongest first,
/// separated by at least minSeparationRad.
std::vector<MusicPoint> musicPeaks(const std::vector<MusicPoint>& spectrum,
                                   std::size_t maxPeaks,
                                   double minSeparationRad);

}  // namespace caraoke::dsp
