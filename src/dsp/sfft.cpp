#include "dsp/sfft.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/units.hpp"
#include "dsp/fft.hpp"
#include "dsp/filter.hpp"
#include "dsp/stats.hpp"

namespace caraoke::dsp {

namespace {

// Wrap an index into [0, n).
std::size_t wrap(std::size_t i, std::size_t n) { return i % n; }

}  // namespace

std::vector<SparseComponent> sparseFft(CSpan signal,
                                       const SparseFftConfig& config,
                                       Rng& rng) {
  const std::size_t n = signal.size();
  const std::size_t b = config.buckets;
  if (!isPowerOfTwo(n) || !isPowerOfTwo(b) || b == 0 || b > n)
    throw std::invalid_argument("sparseFft: n and buckets must be powers of "
                                "two with buckets <= n");
  const std::size_t stride = n / b;

  // Stage 1 — candidate generation. Each round subsamples with a random
  // odd stride (spectral permutation: spikes sharing a bucket this round
  // likely will not next round) and takes B-point FFTs of the signal at a
  // ladder of original-domain shifts. A shift of s multiplies a tone at
  // bin f by e^{j 2 pi f s / n}: the s = 1 phase gives a coarse,
  // unambiguous f estimate; each larger shift refines it (the phase noise
  // divides by s) while the previous estimate resolves the modular
  // ambiguity. On noisy signals the 1-sample phase alone would scatter
  // by tens of bins.
  const std::size_t shifts[] = {1, 4, 16, 64, 256};
  std::map<std::size_t, std::size_t> votes;  // bin -> rounds seen
  for (std::size_t round = 0; round < config.rounds; ++round) {
    const std::size_t sigma =
        2 * static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(n / 2 - 1))) + 1;

    CVec base(b);
    std::vector<CVec> shifted(std::size(shifts), CVec(b));
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t pos = wrap(sigma * i * stride, n);
      base[i] = signal[pos];
      for (std::size_t s = 0; s < std::size(shifts); ++s)
        shifted[s][i] = signal[wrap(pos + shifts[s], n)];
    }
    fftInPlace(base);
    for (auto& y : shifted) fftInPlace(y);

    std::vector<double> mags(b);
    for (std::size_t i = 0; i < b; ++i) mags[i] = std::abs(base[i]);
    const double med = median(mags);
    // Floor against numeric dust on exactly-sparse inputs (leakage of a
    // double-precision FFT is ~1e-13 of the peak).
    const double dust = 1e-6 * maxValue(mags);  // caraoke-lint: allow(units): relative magnitude fraction, not a physical quantity
    const double threshold =
        std::max({config.bucketThreshold * med, dust, 1e-12});

    for (std::size_t bucket = 0; bucket < b; ++bucket) {
      const double m0 = std::abs(base[bucket]);
      if (m0 < threshold) continue;
      // Single-tone buckets keep their magnitude under a 1-sample shift
      // (the §5 time-shift property); collided buckets usually do not.
      const double m1 = std::abs(shifted[0][bucket]);
      if (std::abs(m0 - m1) > config.collisionTolerance * m0) continue;

      // Multi-scale frequency recovery.
      double phase1 = std::arg(shifted[0][bucket] / base[bucket]);
      if (phase1 < 0) phase1 += kTwoPi;
      double f = phase1 / kTwoPi * static_cast<double>(n);
      for (std::size_t s = 1; s < std::size(shifts); ++s) {
        const double shift = static_cast<double>(shifts[s]);
        const double measured =
            std::arg(shifted[s][bucket] / base[bucket]);
        const double predicted = kTwoPi * f * shift / static_cast<double>(n);
        const double delta = wrapPhase(measured - predicted);
        f += delta / kTwoPi * static_cast<double>(n) / shift;
      }
      const long long nLL = static_cast<long long>(n);
      const long long rounded = ((std::llround(f) % nLL) + nLL) % nLL;
      ++votes[static_cast<std::size_t>(rounded)];
    }
  }

  // Merge near-duplicate candidates (off-grid tones round either way);
  // each cluster is represented by its most-voted bin.
  struct Cluster {
    std::size_t bin;       ///< Most-voted bin in the cluster.
    std::size_t binVotes;  ///< Votes of that bin alone.
    std::size_t votes;     ///< Total cluster votes.
    std::size_t lastBin;   ///< Rightmost bin (for adjacency).
  };
  std::vector<Cluster> clusters;
  for (const auto& [bin, count] : votes) {
    if (!clusters.empty() && bin - clusters.back().lastBin <= 1) {
      Cluster& c = clusters.back();
      c.votes += count;
      c.lastBin = bin;
      if (count > c.binVotes) {
        c.binVotes = count;
        c.bin = bin;
      }
    } else {
      clusters.push_back({bin, count, count, bin});
    }
  }
  std::vector<std::pair<std::size_t, std::size_t>> merged;  // bin, votes
  for (const Cluster& c : clusters) merged.emplace_back(c.bin, c.votes);

  // Stage 2 — verification. A collided bucket occasionally slips through
  // the magnitude test and yields a garbage frequency; garbage rarely
  // repeats across rounds (the permutation changes the collision), and a
  // direct Goertzel probe of the original signal rejects what remains.
  // The probe also provides the coefficient estimate, exact even for
  // off-grid tones.
  const std::size_t neededVotes = std::max<std::size_t>(2, config.rounds / 2);

  // Noise/floor reference for the probe threshold: the median magnitude
  // of a handful of random bins, measured over a bounded prefix of the
  // signal so verification cost does not grow with n.
  const CSpan prefix = signal.subspan(0, std::min<std::size_t>(n, 4096));
  std::vector<double> floorProbes;
  for (int k = 0; k < 12; ++k) {
    const double bin = static_cast<double>(rng.uniformInt(
        0, static_cast<std::int64_t>(prefix.size()) - 1));
    floorProbes.push_back(std::abs(goertzel(prefix, bin)));
  }
  const double floorLevel = std::max(median(floorProbes), 1e-12);

  // Verification threshold: noise floor based, but never below a small
  // fraction of the strongest candidate (guards exactly-sparse signals
  // whose random-bin floor is ~0). Screening runs on a bounded prefix so
  // the verification stays sublinear in n; only accepted candidates get
  // the full-length probe that produces the coefficient estimate.
  std::vector<SparseComponent> out;
  double strongest = 0.0;
  std::vector<std::pair<std::size_t, double>> screened;
  for (const auto& [bin, count] : merged) {
    if (count < neededVotes) continue;
    // Prefix frequency matching the full-signal bin: bin * L / n.
    const double prefixBin = static_cast<double>(bin) *
                             static_cast<double>(prefix.size()) /
                             static_cast<double>(n);
    const double mag = std::abs(goertzel(prefix, prefixBin));
    strongest = std::max(strongest, mag);
    screened.emplace_back(bin, mag);
  }
  const double threshold =
      std::max(config.verifyFactor * floorLevel, 0.05 * strongest);
  for (const auto& [bin, mag] : screened) {
    if (mag < threshold) continue;
    out.push_back({bin, goertzel(signal, static_cast<double>(bin))});
  }
  return out;
}

}  // namespace caraoke::dsp
