// Sparse FFT via time-domain subsampling (frequency bucketization) with
// phase-based frequency recovery.
//
// The paper's reader replaces the full FFT with a sparse FFT (§10): a query
// returns a handful of CFO spikes, so the 2048-point spectrum is k-sparse
// with k << N and can be recovered in roughly O(B log B) per round with
// B ~ O(k) buckets. This implementation follows the BigBand-style recipe
// the paper cites [33]: subsample the time signal with a random odd stride
// (which permutes which spikes share a bucket), take a small FFT, detect
// occupied buckets, and recover each spike's exact frequency from the phase
// difference between two subsampled FFTs offset by one sample.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "dsp/types.hpp"

namespace caraoke::dsp {

/// One recovered spectral component.
struct SparseComponent {
  std::size_t bin = 0;      ///< Frequency bin in the full N-point spectrum.
  cdouble value;            ///< Estimated full-FFT coefficient X[bin].
};

/// Tuning for the sparse FFT.
struct SparseFftConfig {
  /// Number of buckets; power of two, should be >= ~4x the expected
  /// sparsity to keep per-round collision probability low.
  std::size_t buckets = 256;
  /// Independent rounds with fresh random strides; a component must be
  /// seen in a majority of rounds to be reported.
  std::size_t rounds = 5;
  /// Bucket magnitude threshold as a multiple of the median bucket
  /// magnitude of that round.
  double bucketThreshold = 4.0;
  /// Bucket collision test: single-tone buckets have equal magnitude in
  /// the shifted and unshifted FFTs; relative difference above this is
  /// treated as a collision and skipped for the round.
  double collisionTolerance = 0.25;
  /// Verification probe: a candidate must measure at least this factor
  /// above the median magnitude of random reference bins.
  double verifyFactor = 4.0;
};

/// Recover the significant components of the N-point spectrum of `signal`
/// (N = signal.size(), must be a power of two and divisible by
/// config.buckets). Deterministic given the Rng state.
std::vector<SparseComponent> sparseFft(CSpan signal,
                                       const SparseFftConfig& config,
                                       Rng& rng);

}  // namespace caraoke::dsp
