#include "dsp/window.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"
#include "obs/prof.hpp"
#include "obs/prof_stages.hpp"

namespace caraoke::dsp {

std::vector<double> makeWindow(WindowKind kind, std::size_t n) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kWindow);
  std::vector<double> w(n, 1.0);
  if (n == 0) return w;
  const double N = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = kTwoPi * static_cast<double>(i) / N;
    switch (kind) {
      case WindowKind::kRect:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
        break;
    }
  }
  return w;
}

CVec applyWindow(CSpan samples, std::span<const double> window) {
  CARAOKE_PROF_SCOPE(obs::prof::stage::kWindow);
  if (samples.size() != window.size())
    throw std::invalid_argument("applyWindow: length mismatch");
  CVec out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    out[i] = samples[i] * window[i];
  return out;
}

double windowGain(std::span<const double> window) {
  double s = 0.0;
  for (double w : window) s += w;
  return s;
}

}  // namespace caraoke::dsp
