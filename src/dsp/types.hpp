// Shared sample/vector types for the DSP layer.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace caraoke::dsp {

/// One complex baseband sample. Double precision: the decoder combines many
/// collisions and small phase errors accumulate at float precision.
using cdouble = std::complex<double>;

/// A contiguous buffer of complex samples.
using CVec = std::vector<cdouble>;

/// Read-only view over complex samples.
using CSpan = std::span<const cdouble>;

/// Read-only view over real samples.
using RSpan = std::span<const double>;

}  // namespace caraoke::dsp
