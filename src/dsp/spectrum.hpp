// Frequency/bin bookkeeping and mixing helpers shared by the estimators.
#pragma once

#include <cstddef>

#include "dsp/types.hpp"

namespace caraoke::dsp {

/// Converts between FFT bin indices and physical frequencies for an
/// N-point FFT at a given sample rate. Bins [0, N/2) map to [0, fs/2);
/// bins [N/2, N) map to negative frequencies.
class BinMapper {
 public:
  /// fftSize points sampled at sampleRateHz.
  BinMapper(std::size_t fftSize, double sampleRateHz);

  /// Width of one bin [Hz] (the paper's delta_f = 1/T, Eq. 6).
  double binWidthHz() const { return sampleRateHz_ / static_cast<double>(n_); }

  /// Frequency of a (possibly fractional) bin, mapped to [-fs/2, fs/2).
  double binToFreq(double bin) const;

  /// Nearest bin index in [0, N) for a frequency in [-fs/2, fs/2).
  std::size_t freqToBin(double freqHz) const;

  /// Exact (fractional) bin for a frequency, without wrapping into [0, N).
  double freqToFractionalBin(double freqHz) const {
    return freqHz / binWidthHz();
  }

  std::size_t fftSize() const { return n_; }
  double sampleRateHz() const { return sampleRateHz_; }

 private:
  std::size_t n_;
  double sampleRateHz_;
};

/// Multiply a signal by e^{j 2 pi f t} (frequency up-shift by f; pass a
/// negative f to down-convert). t = sampleIndex / fs.
CVec mix(CSpan signal, double freqHz, double sampleRateHz);

/// Circularly rotate a spectrum so bin 0 is centered (like fftshift).
CVec fftShift(CSpan spectrum);

/// Signal power = mean |x|^2.
double signalPower(CSpan signal);

/// Signal-to-noise ratio in dB between a clean reference and a noisy
/// version of it (power of reference over power of difference).
double snrDb(CSpan reference, CSpan noisy);

}  // namespace caraoke::dsp
