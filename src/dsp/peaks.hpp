// Spectral peak detection.
//
// A collision's FFT shows one spike per transponder riding on a wideband
// OOK floor (§5, Fig 4). The detector thresholds adaptively off that floor
// (median + k * MAD, both robust to the spikes themselves), takes local
// maxima, and enforces a minimum bin separation so one spike's shoulders are
// not double-counted.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace caraoke::dsp {

/// One detected spectral peak.
struct Peak {
  std::size_t bin = 0;    ///< FFT bin index of the local maximum.
  double magnitude = 0.0; ///< |X[bin]|.
};

/// Threshold strategy.
enum class ThresholdMode {
  /// Global: median + k * MAD over the search window. Right for flat
  /// noise floors.
  kGlobalMad,
  /// CFAR: per-bin threshold = factor * local median (window around the
  /// bin, excluding a guard region). Right for the colored OOK sidelobe
  /// floor of a collision, where the data spectrum humps near the chip
  /// rate would defeat a single global threshold.
  kCfar,
};

/// Tuning for findPeaks().
struct PeakDetectorConfig {
  ThresholdMode mode = ThresholdMode::kCfar;
  /// kGlobalMad: threshold = median + thresholdMads * MAD (in sigma via
  /// the 1.4826 Gaussian consistency factor).
  double thresholdMads = 8.0;
  /// kCfar: one-sided training window, one-sided guard, and the factor
  /// over the local median a bin must exceed.
  std::size_t cfarWindowBins = 48;
  std::size_t cfarGuardBins = 3;
  double cfarFactor = 3.6;
  /// Peaks closer than this many bins are merged (strongest wins).
  std::size_t minSeparationBins = 2;
  /// Restrict the search to [searchBegin, searchEnd) bins; end==0 means
  /// "to the end of the spectrum". Caraoke searches only the 1.2 MHz CFO
  /// span, not the full Nyquist range.
  std::size_t searchBegin = 0;
  std::size_t searchEnd = 0;
  /// Hard floor on the threshold; guards against an all-noise spectrum
  /// whose MAD underestimates the floor.
  double absoluteFloor = 0.0;
};

/// Detect peaks in a magnitude spectrum. Results are sorted by bin index.
std::vector<Peak> findPeaks(std::span<const double> magnitudeSpectrum,
                            const PeakDetectorConfig& config = {});

/// The global (kGlobalMad) threshold over the configured search window,
/// exposed for diagnostics.
double adaptiveThreshold(std::span<const double> magnitudeSpectrum,
                         const PeakDetectorConfig& config = {});

/// The per-bin CFAR threshold curve (factor * local median), exposed for
/// diagnostics and tests.
std::vector<double> cfarThreshold(std::span<const double> magnitudeSpectrum,
                                  const PeakDetectorConfig& config = {});

/// Quadratic (three-point) interpolation of the true peak position around
/// a bin; returns the fractional bin offset in [-0.5, 0.5]. Sharpens CFO
/// estimates beyond the 1.95 kHz bin resolution.
double interpolatePeakOffset(std::span<const double> magnitudeSpectrum,
                             std::size_t bin);

}  // namespace caraoke::dsp
