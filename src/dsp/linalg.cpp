#include "dsp/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace caraoke::dsp {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cdouble{}) {}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::outer(CSpan v) {
  CMatrix m(v.size(), v.size());
  for (std::size_t r = 0; r < v.size(); ++r)
    for (std::size_t c = 0; c < v.size(); ++c)
      m(r, c) = v[r] * std::conj(v[c]);
  return m;
}

CMatrix CMatrix::multiply(const CMatrix& rhs) const {
  if (cols_ != rhs.rows_)
    throw std::invalid_argument("CMatrix::multiply: shape mismatch");
  CMatrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const cdouble a = (*this)(r, k);
      if (a == cdouble{}) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += a * rhs(k, c);
    }
  return out;
}

CVec CMatrix::multiply(CSpan v) const {
  if (cols_ != v.size())
    throw std::invalid_argument("CMatrix::multiply(vec): shape mismatch");
  CVec out(rows_, cdouble{});
  for (std::size_t r = 0; r < rows_; ++r) {
    cdouble acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      out(c, r) = std::conj((*this)(r, c));
  return out;
}

void CMatrix::addScaled(const CMatrix& other, double alpha) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("CMatrix::addScaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
}

void CMatrix::scale(double alpha) {
  for (auto& x : data_) x *= alpha;
}

double CMatrix::maxAbsDiff(const CMatrix& a, const CMatrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_)
    throw std::invalid_argument("CMatrix::maxAbsDiff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  return m;
}

double CMatrix::frobeniusNorm() const {
  double s = 0.0;
  for (const auto& x : data_) s += std::norm(x);
  return std::sqrt(s);
}

EigenResult eigHermitian(const CMatrix& input, double tolerance,
                         int maxSweeps) {
  if (input.rows() != input.cols())
    throw std::invalid_argument("eigHermitian: matrix must be square");
  const std::size_t n = input.rows();
  CMatrix a = input;
  CMatrix v = CMatrix::identity(n);
  const double scale = std::max(a.frobeniusNorm(), 1e-300);

  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(a(p, q));
    if (std::sqrt(off) <= tolerance * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const cdouble apq = a(p, q);
        const double mag = std::abs(apq);
        if (mag <= tolerance * scale * 1e-3) continue;  // caraoke-lint: allow(units): dimensionless sweep threshold, not a time
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        // Complex Jacobi rotation: diagonalize the 2x2 Hermitian block
        // [app, apq; conj(apq), aqq].
        const double phi = std::arg(apq);
        const double theta = 0.5 * std::atan2(2.0 * mag, app - aqq);
        const double c = std::cos(theta);
        const cdouble s = std::sin(theta) * cdouble(std::cos(phi),
                                                    std::sin(phi));
        // Apply A <- J^H A J where J has [c, s; -conj(s), c] in rows/cols
        // (p, q).
        for (std::size_t k = 0; k < n; ++k) {
          const cdouble akp = a(k, p);
          const cdouble akq = a(k, q);
          a(k, p) = akp * c + akq * std::conj(s);
          a(k, q) = -akp * s + akq * c;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const cdouble apk = a(p, k);
          const cdouble aqk = a(q, k);
          a(p, k) = apk * c + aqk * s;
          a(q, k) = -apk * std::conj(s) + aqk * c;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const cdouble vkp = v(k, p);
          const cdouble vkq = v(k, q);
          v(k, p) = vkp * c + vkq * std::conj(s);
          v(k, q) = -vkp * s + vkq * c;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });
  result.vectors = CMatrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    result.values[c] = diag[order[c]];
    for (std::size_t r = 0; r < n; ++r)
      result.vectors(r, c) = v(r, order[c]);
  }
  return result;
}

cdouble innerProduct(CSpan a, CSpan b) {
  if (a.size() != b.size())
    throw std::invalid_argument("innerProduct: length mismatch");
  cdouble acc{};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

double norm2(CSpan v) {
  double s = 0.0;
  for (const auto& x : v) s += std::norm(x);
  return std::sqrt(s);
}

}  // namespace caraoke::dsp
