# Empty compiler generated dependencies file for toll_plaza.
# This may be replaced when dependencies are built.
