file(REMOVE_RECURSE
  "CMakeFiles/toll_plaza.dir/toll_plaza.cpp.o"
  "CMakeFiles/toll_plaza.dir/toll_plaza.cpp.o.d"
  "toll_plaza"
  "toll_plaza.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toll_plaza.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
