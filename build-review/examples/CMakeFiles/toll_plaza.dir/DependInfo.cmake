
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/toll_plaza.cpp" "examples/CMakeFiles/toll_plaza.dir/toll_plaza.cpp.o" "gcc" "examples/CMakeFiles/toll_plaza.dir/toll_plaza.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/apps/CMakeFiles/caraoke_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/caraoke_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/power/CMakeFiles/caraoke_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/caraoke_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/caraoke_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/caraoke_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/caraoke_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
