# Empty compiler generated dependencies file for speed_trap.
# This may be replaced when dependencies are built.
