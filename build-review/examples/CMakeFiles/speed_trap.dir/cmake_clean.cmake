file(REMOVE_RECURSE
  "CMakeFiles/speed_trap.dir/speed_trap.cpp.o"
  "CMakeFiles/speed_trap.dir/speed_trap.cpp.o.d"
  "speed_trap"
  "speed_trap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speed_trap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
