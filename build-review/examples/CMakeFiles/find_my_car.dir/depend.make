# Empty dependencies file for find_my_car.
# This may be replaced when dependencies are built.
