file(REMOVE_RECURSE
  "CMakeFiles/find_my_car.dir/find_my_car.cpp.o"
  "CMakeFiles/find_my_car.dir/find_my_car.cpp.o.d"
  "find_my_car"
  "find_my_car.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_my_car.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
