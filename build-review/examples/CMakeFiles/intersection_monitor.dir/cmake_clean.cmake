file(REMOVE_RECURSE
  "CMakeFiles/intersection_monitor.dir/intersection_monitor.cpp.o"
  "CMakeFiles/intersection_monitor.dir/intersection_monitor.cpp.o.d"
  "intersection_monitor"
  "intersection_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersection_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
