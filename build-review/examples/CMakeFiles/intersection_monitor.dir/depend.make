# Empty dependencies file for intersection_monitor.
# This may be replaced when dependencies are built.
