file(REMOVE_RECURSE
  "CMakeFiles/smart_parking.dir/smart_parking.cpp.o"
  "CMakeFiles/smart_parking.dir/smart_parking.cpp.o.d"
  "smart_parking"
  "smart_parking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_parking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
