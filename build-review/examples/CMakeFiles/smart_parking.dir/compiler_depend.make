# Empty compiler generated dependencies file for smart_parking.
# This may be replaced when dependencies are built.
