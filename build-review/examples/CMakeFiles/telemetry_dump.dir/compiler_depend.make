# Empty compiler generated dependencies file for telemetry_dump.
# This may be replaced when dependencies are built.
