file(REMOVE_RECURSE
  "CMakeFiles/telemetry_dump.dir/telemetry_dump.cpp.o"
  "CMakeFiles/telemetry_dump.dir/telemetry_dump.cpp.o.d"
  "telemetry_dump"
  "telemetry_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
