# Empty dependencies file for test_core_smoke.
# This may be replaced when dependencies are built.
