file(REMOVE_RECURSE
  "CMakeFiles/test_core_smoke.dir/core_smoke_test.cpp.o"
  "CMakeFiles/test_core_smoke.dir/core_smoke_test.cpp.o.d"
  "test_core_smoke"
  "test_core_smoke.pdb"
  "test_core_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
