file(REMOVE_RECURSE
  "CMakeFiles/test_daemon_registry.dir/daemon_registry_test.cpp.o"
  "CMakeFiles/test_daemon_registry.dir/daemon_registry_test.cpp.o.d"
  "test_daemon_registry"
  "test_daemon_registry.pdb"
  "test_daemon_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_daemon_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
