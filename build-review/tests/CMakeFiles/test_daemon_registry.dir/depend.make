# Empty dependencies file for test_daemon_registry.
# This may be replaced when dependencies are built.
