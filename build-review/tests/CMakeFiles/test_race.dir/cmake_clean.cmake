file(REMOVE_RECURSE
  "CMakeFiles/test_race.dir/race_test.cpp.o"
  "CMakeFiles/test_race.dir/race_test.cpp.o.d"
  "test_race"
  "test_race.pdb"
  "test_race[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
