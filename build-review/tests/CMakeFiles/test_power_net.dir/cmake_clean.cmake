file(REMOVE_RECURSE
  "CMakeFiles/test_power_net.dir/power_net_test.cpp.o"
  "CMakeFiles/test_power_net.dir/power_net_test.cpp.o.d"
  "test_power_net"
  "test_power_net.pdb"
  "test_power_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
