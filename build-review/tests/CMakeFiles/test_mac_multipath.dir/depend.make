# Empty dependencies file for test_mac_multipath.
# This may be replaced when dependencies are built.
