file(REMOVE_RECURSE
  "CMakeFiles/test_mac_multipath.dir/mac_multipath_test.cpp.o"
  "CMakeFiles/test_mac_multipath.dir/mac_multipath_test.cpp.o.d"
  "test_mac_multipath"
  "test_mac_multipath.pdb"
  "test_mac_multipath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
