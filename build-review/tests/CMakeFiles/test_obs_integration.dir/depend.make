# Empty dependencies file for test_obs_integration.
# This may be replaced when dependencies are built.
