# Empty compiler generated dependencies file for test_tracker_framing.
# This may be replaced when dependencies are built.
