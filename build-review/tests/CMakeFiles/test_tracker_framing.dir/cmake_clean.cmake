file(REMOVE_RECURSE
  "CMakeFiles/test_tracker_framing.dir/tracker_framing_test.cpp.o"
  "CMakeFiles/test_tracker_framing.dir/tracker_framing_test.cpp.o.d"
  "test_tracker_framing"
  "test_tracker_framing.pdb"
  "test_tracker_framing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tracker_framing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
