# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_dsp[1]_include.cmake")
include("/root/repo/build-review/tests/test_phy[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_core_smoke[1]_include.cmake")
include("/root/repo/build-review/tests/test_counting[1]_include.cmake")
include("/root/repo/build-review/tests/test_localization[1]_include.cmake")
include("/root/repo/build-review/tests/test_decoder[1]_include.cmake")
include("/root/repo/build-review/tests/test_mac_multipath[1]_include.cmake")
include("/root/repo/build-review/tests/test_power_net[1]_include.cmake")
include("/root/repo/build-review/tests/test_apps[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_tracker_framing[1]_include.cmake")
include("/root/repo/build-review/tests/test_daemon_registry[1]_include.cmake")
include("/root/repo/build-review/tests/test_property[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs[1]_include.cmake")
include("/root/repo/build-review/tests/test_obs_integration[1]_include.cmake")
include("/root/repo/build-review/tests/test_chaos[1]_include.cmake")
include("/root/repo/build-review/tests/test_race[1]_include.cmake")
include("/root/repo/build-review/tests/test_determinism[1]_include.cmake")
add_test(caraoke_lint "/root/.pyenv/shims/python3" "/root/repo/tools/caraoke_lint.py" "--root" "/root/repo" "--selftest")
set_tests_properties(caraoke_lint PROPERTIES  LABELS "lint" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;49;add_test;/root/repo/tests/CMakeLists.txt;0;")
