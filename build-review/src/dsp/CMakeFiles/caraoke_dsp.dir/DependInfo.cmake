
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filter.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/filter.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/filter.cpp.o.d"
  "/root/repo/src/dsp/linalg.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/linalg.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/linalg.cpp.o.d"
  "/root/repo/src/dsp/music.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/music.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/music.cpp.o.d"
  "/root/repo/src/dsp/peaks.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/peaks.cpp.o.d"
  "/root/repo/src/dsp/sfft.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/sfft.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/sfft.cpp.o.d"
  "/root/repo/src/dsp/spectrum.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/spectrum.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/spectrum.cpp.o.d"
  "/root/repo/src/dsp/stats.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/stats.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/stats.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/caraoke_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/caraoke_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
