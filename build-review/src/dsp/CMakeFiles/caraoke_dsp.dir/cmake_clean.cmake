file(REMOVE_RECURSE
  "CMakeFiles/caraoke_dsp.dir/fft.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/filter.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/linalg.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/linalg.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/music.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/music.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/peaks.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/peaks.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/sfft.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/sfft.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/stats.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/caraoke_dsp.dir/window.cpp.o"
  "CMakeFiles/caraoke_dsp.dir/window.cpp.o.d"
  "libcaraoke_dsp.a"
  "libcaraoke_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
