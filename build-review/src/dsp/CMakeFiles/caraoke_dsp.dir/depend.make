# Empty dependencies file for caraoke_dsp.
# This may be replaced when dependencies are built.
