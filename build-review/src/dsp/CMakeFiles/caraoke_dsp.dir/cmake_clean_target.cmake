file(REMOVE_RECURSE
  "libcaraoke_dsp.a"
)
