file(REMOVE_RECURSE
  "libcaraoke_obs.a"
)
