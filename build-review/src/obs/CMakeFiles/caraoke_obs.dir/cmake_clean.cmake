file(REMOVE_RECURSE
  "CMakeFiles/caraoke_obs.dir/events.cpp.o"
  "CMakeFiles/caraoke_obs.dir/events.cpp.o.d"
  "CMakeFiles/caraoke_obs.dir/metrics.cpp.o"
  "CMakeFiles/caraoke_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/caraoke_obs.dir/trace.cpp.o"
  "CMakeFiles/caraoke_obs.dir/trace.cpp.o.d"
  "libcaraoke_obs.a"
  "libcaraoke_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
