# Empty dependencies file for caraoke_obs.
# This may be replaced when dependencies are built.
