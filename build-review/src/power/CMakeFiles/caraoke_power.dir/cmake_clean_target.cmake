file(REMOVE_RECURSE
  "libcaraoke_power.a"
)
