# Empty compiler generated dependencies file for caraoke_power.
# This may be replaced when dependencies are built.
