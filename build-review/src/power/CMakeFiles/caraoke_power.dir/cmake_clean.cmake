file(REMOVE_RECURSE
  "CMakeFiles/caraoke_power.dir/model.cpp.o"
  "CMakeFiles/caraoke_power.dir/model.cpp.o.d"
  "libcaraoke_power.a"
  "libcaraoke_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
