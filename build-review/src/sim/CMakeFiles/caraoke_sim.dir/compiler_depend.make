# Empty compiler generated dependencies file for caraoke_sim.
# This may be replaced when dependencies are built.
