file(REMOVE_RECURSE
  "libcaraoke_sim.a"
)
