file(REMOVE_RECURSE
  "CMakeFiles/caraoke_sim.dir/events.cpp.o"
  "CMakeFiles/caraoke_sim.dir/events.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/geometry.cpp.o"
  "CMakeFiles/caraoke_sim.dir/geometry.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/intersection.cpp.o"
  "CMakeFiles/caraoke_sim.dir/intersection.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/medium.cpp.o"
  "CMakeFiles/caraoke_sim.dir/medium.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/mobility.cpp.o"
  "CMakeFiles/caraoke_sim.dir/mobility.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/scene.cpp.o"
  "CMakeFiles/caraoke_sim.dir/scene.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/traffic_light.cpp.o"
  "CMakeFiles/caraoke_sim.dir/traffic_light.cpp.o.d"
  "CMakeFiles/caraoke_sim.dir/transponder.cpp.o"
  "CMakeFiles/caraoke_sim.dir/transponder.cpp.o.d"
  "libcaraoke_sim.a"
  "libcaraoke_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
