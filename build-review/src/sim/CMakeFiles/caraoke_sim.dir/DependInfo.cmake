
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/events.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/events.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/events.cpp.o.d"
  "/root/repo/src/sim/geometry.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/geometry.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/geometry.cpp.o.d"
  "/root/repo/src/sim/intersection.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/intersection.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/intersection.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/medium.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/medium.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/mobility.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/mobility.cpp.o.d"
  "/root/repo/src/sim/scene.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/scene.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/scene.cpp.o.d"
  "/root/repo/src/sim/traffic_light.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/traffic_light.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/traffic_light.cpp.o.d"
  "/root/repo/src/sim/transponder.cpp" "src/sim/CMakeFiles/caraoke_sim.dir/transponder.cpp.o" "gcc" "src/sim/CMakeFiles/caraoke_sim.dir/transponder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/caraoke_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/caraoke_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
