file(REMOVE_RECURSE
  "CMakeFiles/caraoke_common.dir/log.cpp.o"
  "CMakeFiles/caraoke_common.dir/log.cpp.o.d"
  "CMakeFiles/caraoke_common.dir/rng.cpp.o"
  "CMakeFiles/caraoke_common.dir/rng.cpp.o.d"
  "CMakeFiles/caraoke_common.dir/table.cpp.o"
  "CMakeFiles/caraoke_common.dir/table.cpp.o.d"
  "libcaraoke_common.a"
  "libcaraoke_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
