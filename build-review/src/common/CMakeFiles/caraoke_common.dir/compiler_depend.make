# Empty compiler generated dependencies file for caraoke_common.
# This may be replaced when dependencies are built.
