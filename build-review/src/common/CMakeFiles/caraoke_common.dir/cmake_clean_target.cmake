file(REMOVE_RECURSE
  "libcaraoke_common.a"
)
