
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/cfo.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/cfo.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/cfo.cpp.o.d"
  "/root/repo/src/phy/channel.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/channel.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/channel.cpp.o.d"
  "/root/repo/src/phy/crc.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/crc.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/crc.cpp.o.d"
  "/root/repo/src/phy/manchester.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/manchester.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/manchester.cpp.o.d"
  "/root/repo/src/phy/ook.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/ook.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/ook.cpp.o.d"
  "/root/repo/src/phy/packet.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/packet.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/packet.cpp.o.d"
  "/root/repo/src/phy/sync.cpp" "src/phy/CMakeFiles/caraoke_phy.dir/sync.cpp.o" "gcc" "src/phy/CMakeFiles/caraoke_phy.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/caraoke_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
