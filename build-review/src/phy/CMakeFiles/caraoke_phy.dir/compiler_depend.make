# Empty compiler generated dependencies file for caraoke_phy.
# This may be replaced when dependencies are built.
