file(REMOVE_RECURSE
  "libcaraoke_phy.a"
)
