file(REMOVE_RECURSE
  "CMakeFiles/caraoke_phy.dir/cfo.cpp.o"
  "CMakeFiles/caraoke_phy.dir/cfo.cpp.o.d"
  "CMakeFiles/caraoke_phy.dir/channel.cpp.o"
  "CMakeFiles/caraoke_phy.dir/channel.cpp.o.d"
  "CMakeFiles/caraoke_phy.dir/crc.cpp.o"
  "CMakeFiles/caraoke_phy.dir/crc.cpp.o.d"
  "CMakeFiles/caraoke_phy.dir/manchester.cpp.o"
  "CMakeFiles/caraoke_phy.dir/manchester.cpp.o.d"
  "CMakeFiles/caraoke_phy.dir/ook.cpp.o"
  "CMakeFiles/caraoke_phy.dir/ook.cpp.o.d"
  "CMakeFiles/caraoke_phy.dir/packet.cpp.o"
  "CMakeFiles/caraoke_phy.dir/packet.cpp.o.d"
  "CMakeFiles/caraoke_phy.dir/sync.cpp.o"
  "CMakeFiles/caraoke_phy.dir/sync.cpp.o.d"
  "libcaraoke_phy.a"
  "libcaraoke_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
