# Empty dependencies file for caraoke_core.
# This may be replaced when dependencies are built.
