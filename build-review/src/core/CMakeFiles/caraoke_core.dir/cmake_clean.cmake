file(REMOVE_RECURSE
  "CMakeFiles/caraoke_core.dir/aoa.cpp.o"
  "CMakeFiles/caraoke_core.dir/aoa.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/counter.cpp.o"
  "CMakeFiles/caraoke_core.dir/counter.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/counting_analysis.cpp.o"
  "CMakeFiles/caraoke_core.dir/counting_analysis.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/decoder.cpp.o"
  "CMakeFiles/caraoke_core.dir/decoder.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/localizer.cpp.o"
  "CMakeFiles/caraoke_core.dir/localizer.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/mac.cpp.o"
  "CMakeFiles/caraoke_core.dir/mac.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/multipath.cpp.o"
  "CMakeFiles/caraoke_core.dir/multipath.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/reader.cpp.o"
  "CMakeFiles/caraoke_core.dir/reader.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/spectrum_analysis.cpp.o"
  "CMakeFiles/caraoke_core.dir/spectrum_analysis.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/speed.cpp.o"
  "CMakeFiles/caraoke_core.dir/speed.cpp.o.d"
  "CMakeFiles/caraoke_core.dir/tracker.cpp.o"
  "CMakeFiles/caraoke_core.dir/tracker.cpp.o.d"
  "libcaraoke_core.a"
  "libcaraoke_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
