file(REMOVE_RECURSE
  "libcaraoke_core.a"
)
