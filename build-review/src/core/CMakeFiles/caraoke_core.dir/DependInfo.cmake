
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aoa.cpp" "src/core/CMakeFiles/caraoke_core.dir/aoa.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/aoa.cpp.o.d"
  "/root/repo/src/core/counter.cpp" "src/core/CMakeFiles/caraoke_core.dir/counter.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/counter.cpp.o.d"
  "/root/repo/src/core/counting_analysis.cpp" "src/core/CMakeFiles/caraoke_core.dir/counting_analysis.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/counting_analysis.cpp.o.d"
  "/root/repo/src/core/decoder.cpp" "src/core/CMakeFiles/caraoke_core.dir/decoder.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/decoder.cpp.o.d"
  "/root/repo/src/core/localizer.cpp" "src/core/CMakeFiles/caraoke_core.dir/localizer.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/localizer.cpp.o.d"
  "/root/repo/src/core/mac.cpp" "src/core/CMakeFiles/caraoke_core.dir/mac.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/mac.cpp.o.d"
  "/root/repo/src/core/multipath.cpp" "src/core/CMakeFiles/caraoke_core.dir/multipath.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/multipath.cpp.o.d"
  "/root/repo/src/core/reader.cpp" "src/core/CMakeFiles/caraoke_core.dir/reader.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/reader.cpp.o.d"
  "/root/repo/src/core/spectrum_analysis.cpp" "src/core/CMakeFiles/caraoke_core.dir/spectrum_analysis.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/spectrum_analysis.cpp.o.d"
  "/root/repo/src/core/speed.cpp" "src/core/CMakeFiles/caraoke_core.dir/speed.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/speed.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/caraoke_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/caraoke_core.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/caraoke_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/caraoke_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
