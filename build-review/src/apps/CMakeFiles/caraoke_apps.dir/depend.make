# Empty dependencies file for caraoke_apps.
# This may be replaced when dependencies are built.
