
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/car_finder.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/car_finder.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/car_finder.cpp.o.d"
  "/root/repo/src/apps/cfo_registry.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/cfo_registry.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/cfo_registry.cpp.o.d"
  "/root/repo/src/apps/parking.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/parking.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/parking.cpp.o.d"
  "/root/repo/src/apps/reader_daemon.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/reader_daemon.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/reader_daemon.cpp.o.d"
  "/root/repo/src/apps/red_light.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/red_light.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/red_light.cpp.o.d"
  "/root/repo/src/apps/speed_enforcement.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/speed_enforcement.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/speed_enforcement.cpp.o.d"
  "/root/repo/src/apps/tolling.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/tolling.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/tolling.cpp.o.d"
  "/root/repo/src/apps/traffic_monitor.cpp" "src/apps/CMakeFiles/caraoke_apps.dir/traffic_monitor.cpp.o" "gcc" "src/apps/CMakeFiles/caraoke_apps.dir/traffic_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/caraoke_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/caraoke_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/caraoke_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/power/CMakeFiles/caraoke_power.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/caraoke_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/caraoke_dsp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
