file(REMOVE_RECURSE
  "libcaraoke_apps.a"
)
