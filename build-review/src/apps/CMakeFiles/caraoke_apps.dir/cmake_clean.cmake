file(REMOVE_RECURSE
  "CMakeFiles/caraoke_apps.dir/car_finder.cpp.o"
  "CMakeFiles/caraoke_apps.dir/car_finder.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/cfo_registry.cpp.o"
  "CMakeFiles/caraoke_apps.dir/cfo_registry.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/parking.cpp.o"
  "CMakeFiles/caraoke_apps.dir/parking.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/reader_daemon.cpp.o"
  "CMakeFiles/caraoke_apps.dir/reader_daemon.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/red_light.cpp.o"
  "CMakeFiles/caraoke_apps.dir/red_light.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/speed_enforcement.cpp.o"
  "CMakeFiles/caraoke_apps.dir/speed_enforcement.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/tolling.cpp.o"
  "CMakeFiles/caraoke_apps.dir/tolling.cpp.o.d"
  "CMakeFiles/caraoke_apps.dir/traffic_monitor.cpp.o"
  "CMakeFiles/caraoke_apps.dir/traffic_monitor.cpp.o.d"
  "libcaraoke_apps.a"
  "libcaraoke_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
