file(REMOVE_RECURSE
  "libcaraoke_net.a"
)
