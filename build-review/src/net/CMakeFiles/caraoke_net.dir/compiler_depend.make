# Empty compiler generated dependencies file for caraoke_net.
# This may be replaced when dependencies are built.
