file(REMOVE_RECURSE
  "CMakeFiles/caraoke_net.dir/backend.cpp.o"
  "CMakeFiles/caraoke_net.dir/backend.cpp.o.d"
  "CMakeFiles/caraoke_net.dir/clock.cpp.o"
  "CMakeFiles/caraoke_net.dir/clock.cpp.o.d"
  "CMakeFiles/caraoke_net.dir/framing.cpp.o"
  "CMakeFiles/caraoke_net.dir/framing.cpp.o.d"
  "CMakeFiles/caraoke_net.dir/link.cpp.o"
  "CMakeFiles/caraoke_net.dir/link.cpp.o.d"
  "CMakeFiles/caraoke_net.dir/message.cpp.o"
  "CMakeFiles/caraoke_net.dir/message.cpp.o.d"
  "CMakeFiles/caraoke_net.dir/outbox.cpp.o"
  "CMakeFiles/caraoke_net.dir/outbox.cpp.o.d"
  "libcaraoke_net.a"
  "libcaraoke_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caraoke_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
