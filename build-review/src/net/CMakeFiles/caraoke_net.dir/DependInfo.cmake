
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/backend.cpp" "src/net/CMakeFiles/caraoke_net.dir/backend.cpp.o" "gcc" "src/net/CMakeFiles/caraoke_net.dir/backend.cpp.o.d"
  "/root/repo/src/net/clock.cpp" "src/net/CMakeFiles/caraoke_net.dir/clock.cpp.o" "gcc" "src/net/CMakeFiles/caraoke_net.dir/clock.cpp.o.d"
  "/root/repo/src/net/framing.cpp" "src/net/CMakeFiles/caraoke_net.dir/framing.cpp.o" "gcc" "src/net/CMakeFiles/caraoke_net.dir/framing.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/caraoke_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/caraoke_net.dir/link.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/caraoke_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/caraoke_net.dir/message.cpp.o.d"
  "/root/repo/src/net/outbox.cpp" "src/net/CMakeFiles/caraoke_net.dir/outbox.cpp.o" "gcc" "src/net/CMakeFiles/caraoke_net.dir/outbox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/caraoke_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/caraoke_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/caraoke_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/phy/CMakeFiles/caraoke_phy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/dsp/CMakeFiles/caraoke_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
