# Empty dependencies file for bench_fig08_decoding_averaging.
# This may be replaced when dependencies are built.
