file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_decoding_averaging.dir/fig08_decoding_averaging.cpp.o"
  "CMakeFiles/bench_fig08_decoding_averaging.dir/fig08_decoding_averaging.cpp.o.d"
  "bench_fig08_decoding_averaging"
  "bench_fig08_decoding_averaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_decoding_averaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
