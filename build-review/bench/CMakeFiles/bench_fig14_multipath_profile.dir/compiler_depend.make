# Empty compiler generated dependencies file for bench_fig14_multipath_profile.
# This may be replaced when dependencies are built.
