file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_multipath_profile.dir/fig14_multipath_profile.cpp.o"
  "CMakeFiles/bench_fig14_multipath_profile.dir/fig14_multipath_profile.cpp.o.d"
  "bench_fig14_multipath_profile"
  "bench_fig14_multipath_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_multipath_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
