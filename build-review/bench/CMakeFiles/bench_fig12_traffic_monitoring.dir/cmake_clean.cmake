file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_traffic_monitoring.dir/fig12_traffic_monitoring.cpp.o"
  "CMakeFiles/bench_fig12_traffic_monitoring.dir/fig12_traffic_monitoring.cpp.o.d"
  "bench_fig12_traffic_monitoring"
  "bench_fig12_traffic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_traffic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
