# Empty dependencies file for bench_fig12_traffic_monitoring.
# This may be replaced when dependencies are built.
