# Empty compiler generated dependencies file for bench_fig16_identification_time.
# This may be replaced when dependencies are built.
