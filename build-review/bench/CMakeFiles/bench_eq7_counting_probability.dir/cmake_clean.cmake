file(REMOVE_RECURSE
  "CMakeFiles/bench_eq7_counting_probability.dir/eq7_counting_probability.cpp.o"
  "CMakeFiles/bench_eq7_counting_probability.dir/eq7_counting_probability.cpp.o.d"
  "bench_eq7_counting_probability"
  "bench_eq7_counting_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq7_counting_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
