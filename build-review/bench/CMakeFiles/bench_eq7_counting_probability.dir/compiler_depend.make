# Empty compiler generated dependencies file for bench_eq7_counting_probability.
# This may be replaced when dependencies are built.
