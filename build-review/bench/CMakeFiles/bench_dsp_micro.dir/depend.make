# Empty dependencies file for bench_dsp_micro.
# This may be replaced when dependencies are built.
