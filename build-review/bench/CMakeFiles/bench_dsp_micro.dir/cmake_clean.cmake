file(REMOVE_RECURSE
  "CMakeFiles/bench_dsp_micro.dir/dsp_micro.cpp.o"
  "CMakeFiles/bench_dsp_micro.dir/dsp_micro.cpp.o.d"
  "bench_dsp_micro"
  "bench_dsp_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
