# Empty dependencies file for bench_fig04_collision_spectrum.
# This may be replaced when dependencies are built.
