file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_collision_spectrum.dir/fig04_collision_spectrum.cpp.o"
  "CMakeFiles/bench_fig04_collision_spectrum.dir/fig04_collision_spectrum.cpp.o.d"
  "bench_fig04_collision_spectrum"
  "bench_fig04_collision_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_collision_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
