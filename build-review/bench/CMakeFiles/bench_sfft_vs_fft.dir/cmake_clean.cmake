file(REMOVE_RECURSE
  "CMakeFiles/bench_sfft_vs_fft.dir/sfft_vs_fft.cpp.o"
  "CMakeFiles/bench_sfft_vs_fft.dir/sfft_vs_fft.cpp.o.d"
  "bench_sfft_vs_fft"
  "bench_sfft_vs_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfft_vs_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
