# Empty dependencies file for bench_sfft_vs_fft.
# This may be replaced when dependencies are built.
