# Empty compiler generated dependencies file for bench_fig15_speed_accuracy.
# This may be replaced when dependencies are built.
