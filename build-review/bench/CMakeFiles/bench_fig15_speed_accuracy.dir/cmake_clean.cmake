file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_speed_accuracy.dir/fig15_speed_accuracy.cpp.o"
  "CMakeFiles/bench_fig15_speed_accuracy.dir/fig15_speed_accuracy.cpp.o.d"
  "bench_fig15_speed_accuracy"
  "bench_fig15_speed_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_speed_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
