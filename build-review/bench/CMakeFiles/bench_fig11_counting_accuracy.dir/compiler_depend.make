# Empty compiler generated dependencies file for bench_fig11_counting_accuracy.
# This may be replaced when dependencies are built.
