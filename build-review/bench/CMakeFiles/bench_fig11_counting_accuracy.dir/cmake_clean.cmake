file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_counting_accuracy.dir/fig11_counting_accuracy.cpp.o"
  "CMakeFiles/bench_fig11_counting_accuracy.dir/fig11_counting_accuracy.cpp.o.d"
  "bench_fig11_counting_accuracy"
  "bench_fig11_counting_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_counting_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
