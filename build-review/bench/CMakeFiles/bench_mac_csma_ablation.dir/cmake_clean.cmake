file(REMOVE_RECURSE
  "CMakeFiles/bench_mac_csma_ablation.dir/mac_csma_ablation.cpp.o"
  "CMakeFiles/bench_mac_csma_ablation.dir/mac_csma_ablation.cpp.o.d"
  "bench_mac_csma_ablation"
  "bench_mac_csma_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mac_csma_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
