# Empty dependencies file for bench_mac_csma_ablation.
# This may be replaced when dependencies are built.
