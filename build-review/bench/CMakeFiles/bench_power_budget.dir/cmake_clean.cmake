file(REMOVE_RECURSE
  "CMakeFiles/bench_power_budget.dir/power_budget.cpp.o"
  "CMakeFiles/bench_power_budget.dir/power_budget.cpp.o.d"
  "bench_power_budget"
  "bench_power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
