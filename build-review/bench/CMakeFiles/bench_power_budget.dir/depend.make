# Empty dependencies file for bench_power_budget.
# This may be replaced when dependencies are built.
