file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder_ablation.dir/decoder_ablation.cpp.o"
  "CMakeFiles/bench_decoder_ablation.dir/decoder_ablation.cpp.o.d"
  "bench_decoder_ablation"
  "bench_decoder_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
